/**
 * @file
 * Diagnostic records produced by the static kernel verifier.
 *
 * Every pass reports findings as Diagnostics: a stable machine
 * readable code, a severity, the offending pc with its disassembly,
 * and a fix-it hint. Kernel-level findings (e.g. the static progress
 * check) carry pc = -1.
 *
 * Suppressions are kernel-scoped: a Kernel can declare that a given
 * diagnostic code is expected (isa::Kernel::lintSuppressions, emitted
 * by the workload code generators where a hazard is the point of the
 * experiment, e.g. the MonR check-then-arm race). Suppressed
 * diagnostics stay in the report — marked, demoted out of the error
 * count — so tools can still show *why* a kernel is exempt.
 */

#ifndef IFP_ANALYSIS_DIAGNOSTICS_HH
#define IFP_ANALYSIS_DIAGNOSTICS_HH

#include <string>
#include <vector>

namespace ifp::analysis {

/** How bad a finding is. */
enum class Severity
{
    Note,     //!< informational (e.g. a suppressed finding)
    Warning,  //!< probably a bug; fails --Werror
    Error,    //!< definitely malformed or guaranteed to hang
};

/** Printable severity name ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/** One finding of one pass. */
struct Diagnostic
{
    /** Pass that produced the finding (e.g. "structural"). */
    std::string pass;
    /** Stable machine-readable code (e.g. "branch-range", "wov"). */
    std::string code;
    Severity severity = Severity::Warning;
    /** Offending instruction index, or -1 for kernel-level findings. */
    int pc = -1;
    std::string message;
    /** Disassembly of the instruction at pc ("" for kernel-level). */
    std::string disasm;
    /** Fix-it hint. */
    std::string hint;

    /** Set when a kernel-scoped suppression matched this code. */
    bool suppressed = false;
    /** The suppression's stated reason (annotation). */
    std::string suppressReason;
};

/** The full result of linting one kernel. */
struct Report
{
    std::string kernel;
    std::vector<Diagnostic> diagnostics;

    /** Unsuppressed findings at exactly @p severity. */
    unsigned count(Severity severity) const;

    /**
     * True when the kernel passes: no unsuppressed errors, and with
     * @p werror no unsuppressed warnings either.
     */
    bool clean(bool werror) const;
};

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_DIAGNOSTICS_HH
