#include "analysis/passes.hh"

#include <algorithm>
#include <set>
#include <string>

#include "isa/builder.hh"

namespace ifp::analysis {

using isa::Opcode;
using isa::Reg;

namespace {

constexpr int backsliceDepth = 6;

/** Residency demands beyond this are reported as "at least". */
constexpr std::int64_t demandClamp = 1'000'000'000;

bool
isCondBranch(const isa::Instr &instr)
{
    return instr.op == Opcode::Bz || instr.op == Opcode::Bnz;
}

bool
isAluOp(Opcode op)
{
    return op >= Opcode::Add && op <= Opcode::CmpLe;
}

bool
isEqualityCmp(Opcode op)
{
    return op == Opcode::CmpEq || op == Opcode::CmpNe;
}

/** Atomic ops that accumulate arrivals (counter semantics). */
bool
isAccumulatingAop(mem::AtomicOpcode aop)
{
    using mem::AtomicOpcode;
    return aop == AtomicOpcode::Add || aop == AtomicOpcode::Sub ||
           aop == AtomicOpcode::Inc || aop == AtomicOpcode::Dec;
}

/** Global-memory ops that modify their target address. */
bool
isGlobalWrite(const isa::Instr &instr)
{
    if (instr.op == Opcode::St)
        return true;
    if (instr.op == Opcode::Atom || instr.op == Opcode::AtomWait)
        return instr.aop != mem::AtomicOpcode::Load;
    return false;
}

bool
reachablePc(const PassContext &ctx, std::size_t pc)
{
    int blk = ctx.cfg.blockOf(pc);
    return blk >= 0 && ctx.cfg.block(blk).reachable;
}

Diagnostic
makeDiag(const PassContext &ctx, const char *pass, const char *code,
         Severity severity, int pc, std::string message,
         std::string hint)
{
    Diagnostic d;
    d.pass = pass;
    d.code = code;
    d.severity = severity;
    d.pc = pc;
    d.message = std::move(message);
    d.hint = std::move(hint);
    if (pc >= 0 &&
        pc < static_cast<int>(ctx.kernel.code.size())) {
        d.disasm = isa::disassemble(ctx.kernel.code[pc]);
    }
    return d;
}

/**
 * Collect the definition pcs transitively feeding (pc, reg), walking
 * through ALU/Mov defs up to @p depth levels. Load-class defs (Ld,
 * LdLds, Atom, AtomWait) are slice leaves. Entry definitions (-1) are
 * skipped.
 */
void
collectBackslice(const PassContext &ctx, std::size_t pc, Reg reg,
                 int depth, std::set<int> &defs)
{
    for (int d : ctx.df.reachingDefs(pc, reg)) {
        if (d < 0 || defs.count(d))
            continue;
        defs.insert(d);
        if (depth <= 0)
            continue;
        const isa::Instr &in = ctx.kernel.code[d];
        if (in.op == Opcode::Mov || isAluOp(in.op)) {
            for (Reg r : InstrEffects::reads(in))
                collectBackslice(ctx, d, r, depth - 1, defs);
        }
    }
}

std::set<int>
backslice(const PassContext &ctx, std::size_t pc, Reg reg)
{
    std::set<int> defs;
    collectBackslice(ctx, pc, reg, backsliceDepth, defs);
    return defs;
}

/**
 * Two memory ops address the same abstract location when their
 * address intervals are bounded and identical, or when they share the
 * same base register with identical reaching definitions and the same
 * offset (robust against unbounded bases, e.g. SLM's queue slots).
 */
bool
sameAbstractAddress(const PassContext &ctx, std::size_t a,
                    std::size_t b)
{
    Interval ia = ctx.df.addressOf(a);
    Interval ib = ctx.df.addressOf(b);
    if (ia.bounded() && ib.bounded())
        return ia == ib;
    const isa::Instr &insA = ctx.kernel.code[a];
    const isa::Instr &insB = ctx.kernel.code[b];
    return insA.src0 == insB.src0 && insA.imm == insB.imm &&
           ctx.df.reachingDefs(a, insA.src0) ==
               ctx.df.reachingDefs(b, insB.src0);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Structural verifier
// ---------------------------------------------------------------------

void
runStructuralPass(const PassContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &code = ctx.kernel.code;
    const char *pass = "structural";

    bool sawReachableHalt = false;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        const isa::Instr &in = code[pc];
        const bool reachable = reachablePc(ctx, pc);
        if (in.op == Opcode::Halt && reachable)
            sawReachableHalt = true;

        if (isBranch(in) &&
            (in.imm < 0 ||
             in.imm >= static_cast<std::int64_t>(code.size()))) {
            out.push_back(makeDiag(
                ctx, pass, "branch-range", Severity::Error,
                static_cast<int>(pc),
                "branch target " + std::to_string(in.imm) +
                    " outside code [0, " +
                    std::to_string(code.size()) + ")",
                "bind the label before build() or fix the target"));
        }
        if (in.op == Opcode::Valu && in.imm <= 0) {
            out.push_back(makeDiag(
                ctx, pass, "valu-cycles", Severity::Error,
                static_cast<int>(pc),
                "valu with non-positive cycle count " +
                    std::to_string(in.imm),
                "valu must occupy the SIMD for at least one cycle"));
        }
        if (InstrEffects::writesDst(in) && in.dst == isa::rZero) {
            out.push_back(makeDiag(
                ctx, pass, "writes-r0", Severity::Warning,
                static_cast<int>(pc),
                "instruction writes r0, the by-convention zero "
                "register",
                "use a scratch register (r16..r31) instead"));
        }
        if (in.useImm && !isAluOp(in.op)) {
            out.push_back(makeDiag(
                ctx, pass, "atom-shape", Severity::Warning,
                static_cast<int>(pc),
                "useImm is only meaningful on ALU instructions",
                "clear useImm; non-ALU ops read imm directly"));
        }
        if (in.op == Opcode::Atom &&
            in.aop != mem::AtomicOpcode::Cas && in.src2 != 0) {
            out.push_back(makeDiag(
                ctx, pass, "atom-shape", Severity::Warning,
                static_cast<int>(pc),
                "non-CAS atomic with a compare operand in src2 "
                "(ignored at the L2 ALU)",
                "src2 is read only by CAS; did you mean AtomWait's "
                "expected operand?"));
        }
        if (in.op == Opcode::ArmWait && in.dst != 0) {
            out.push_back(makeDiag(
                ctx, pass, "atom-shape", Severity::Warning,
                static_cast<int>(pc),
                "ArmWait does not write a destination register",
                "drop the dst operand; the monitor result is "
                "delivered by resumption"));
        }

        if (!reachable)
            continue;

        // Value-dependent checks (need the dataflow environment).
        if (in.op == Opcode::Div || in.op == Opcode::Rem) {
            Interval rhs = in.useImm
                               ? Interval::constant(in.imm)
                               : ctx.df.value(pc, in.src1);
            if (rhs.isConst() && rhs.lo == 0) {
                out.push_back(makeDiag(
                    ctx, pass, "div-zero", Severity::Error,
                    static_cast<int>(pc),
                    "division by constant zero (runtime panic)",
                    "fix the divisor; the interpreter asserts on 0"));
            }
        }
        if (in.op == Opcode::SleepR) {
            Interval v = ctx.df.value(pc, in.src0);
            if (v.hi <= 0) {
                out.push_back(makeDiag(
                    ctx, pass, "sleep-cycles", Severity::Error,
                    static_cast<int>(pc),
                    "s_sleep duration is provably non-positive "
                    "(runtime assert)",
                    "seed the backoff register with a positive "
                    "cycle count"));
            }
        }
        for (Reg r : InstrEffects::reads(in)) {
            if (!ctx.df.mayBeDefined(pc, r)) {
                out.push_back(makeDiag(
                    ctx, pass, "use-before-def", Severity::Warning,
                    static_cast<int>(pc),
                    "r" + std::to_string(r) +
                        " is read but never written on any path "
                        "(reads launch-time zero)",
                    "initialize the register, or use r0 if zero is "
                    "intended"));
            }
        }
    }

    if (!sawReachableHalt) {
        out.push_back(makeDiag(
            ctx, pass, "no-halt", Severity::Error, -1,
            "kernel has no reachable Halt; wavefronts cannot retire",
            "end every path with halt()"));
    }
    for (const BasicBlock &bb : ctx.cfg.blocks()) {
        if (bb.reachable && bb.fallsOffEnd) {
            out.push_back(makeDiag(
                ctx, pass, "fall-off-end", Severity::Error,
                static_cast<int>(bb.last),
                "control flow can run past the end of the code "
                "(runtime panic)",
                "terminate the path with halt() or a branch"));
        }
        if (!bb.reachable) {
            out.push_back(makeDiag(
                ctx, pass, "unreachable", Severity::Warning,
                static_cast<int>(bb.first),
                "unreachable code (pcs " + std::to_string(bb.first) +
                    ".." + std::to_string(bb.last) + ")",
                "remove dead code or fix the branch that should "
                "reach it"));
        }
    }
}

// ---------------------------------------------------------------------
// Barrier divergence
// ---------------------------------------------------------------------

void
runBarrierDivergencePass(const PassContext &ctx,
                         std::vector<Diagnostic> &out)
{
    const auto &code = ctx.kernel.code;
    for (std::size_t pc_bar = 0; pc_bar < code.size(); ++pc_bar) {
        if (code[pc_bar].op != Opcode::Bar ||
            !reachablePc(ctx, pc_bar)) {
            continue;
        }
        int barBlock = ctx.cfg.blockOf(pc_bar);
        for (std::size_t pc_b = 0; pc_b < code.size(); ++pc_b) {
            if (!isCondBranch(code[pc_b]) || !reachablePc(ctx, pc_b))
                continue;
            if (!ctx.df.divergent(pc_b, code[pc_b].src0))
                continue;
            int bBlk = ctx.cfg.blockOf(pc_b);
            // The divergent region: blocks reachable from the branch
            // before control reconverges at its immediate
            // postdominator. A Bar there can be reached by a strict
            // subset of the WG's wavefronts.
            std::vector<bool> region = ctx.cfg.reachableFrom(
                bBlk, ctx.cfg.ipdom(bBlk), /*follow_back_edges=*/true);
            if (barBlock != bBlk && region[barBlock]) {
                out.push_back(makeDiag(
                    ctx, "barrier-divergence", "bar-divergence",
                    Severity::Warning, static_cast<int>(pc_bar),
                    "barrier reachable under divergent control flow "
                    "(branch at pc " +
                        std::to_string(pc_b) +
                        " depends on a wavefront-varying value)",
                    "hoist the barrier past the reconvergence point, "
                    "or make the branch condition uniform"));
                break;  // one report per barrier
            }
        }
    }
}

// ---------------------------------------------------------------------
// Window of vulnerability
// ---------------------------------------------------------------------

void
runWovPass(const PassContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &code = ctx.kernel.code;
    for (std::size_t pc_w = 0; pc_w < code.size(); ++pc_w) {
        if (code[pc_w].op != Opcode::ArmWait ||
            !reachablePc(ctx, pc_w)) {
            continue;
        }
        int wBlk = ctx.cfg.blockOf(pc_w);
        bool reported = false;
        for (std::size_t pc_c = 0; pc_c < code.size() && !reported;
             ++pc_c) {
            const isa::Instr &check = code[pc_c];
            // AtomWait is the race-free form: check and wait are one
            // atomic step, so it is deliberately not a WOV check.
            if ((check.op != Opcode::Ld &&
                 check.op != Opcode::Atom) ||
                !reachablePc(ctx, pc_c)) {
                continue;
            }
            if (!sameAbstractAddress(ctx, pc_c, pc_w))
                continue;
            for (std::size_t pc_b = 0; pc_b < code.size(); ++pc_b) {
                if (!isCondBranch(code[pc_b]) ||
                    !reachablePc(ctx, pc_b)) {
                    continue;
                }
                std::set<int> slice =
                    backslice(ctx, pc_b, code[pc_b].src0);
                if (!slice.count(static_cast<int>(pc_c)))
                    continue;
                int bBlk = ctx.cfg.blockOf(pc_b);
                std::vector<bool> reach = ctx.cfg.reachableFrom(
                    bBlk, -1, /*follow_back_edges=*/true);
                if (wBlk != bBlk && !reach[wBlk])
                    continue;
                out.push_back(makeDiag(
                    ctx, "wov", "wov", Severity::Warning,
                    static_cast<int>(pc_w),
                    "monitor armed after a separate check of the "
                    "same address (check at pc " +
                        std::to_string(pc_c) + ", branch at pc " +
                        std::to_string(pc_b) +
                        "): a notification landing between check "
                        "and arm is lost",
                    "fuse check and wait with a waiting atomic "
                    "(AtomWait) to close the window"));
                reported = true;
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lost wakeup
// ---------------------------------------------------------------------

void
runLostWakeupPass(const PassContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &code = ctx.kernel.code;
    struct WaitTarget
    {
        std::size_t pc;
        Interval addr;
    };
    std::vector<WaitTarget> targets;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (InstrEffects::isWaitOp(code[pc]) && reachablePc(ctx, pc)) {
            Interval addr = ctx.df.addressOf(pc);
            if (addr.bounded())
                targets.push_back({pc, addr});
        }
    }
    if (targets.empty())
        return;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op != Opcode::St || !reachablePc(ctx, pc))
            continue;
        Interval addr = ctx.df.addressOf(pc);
        if (!addr.bounded())
            continue;
        for (const WaitTarget &t : targets) {
            if (!addr.overlaps(t.addr))
                continue;
            out.push_back(makeDiag(
                ctx, "lost-wakeup", "lost-wakeup", Severity::Warning,
                static_cast<int>(pc),
                "plain store to an address the wait at pc " +
                    std::to_string(t.pc) +
                    " monitors; plain stores do not notify waiting "
                    "WGs",
                "use a releasing atomic (Atom Exch/Store) so the "
                "sync monitor observes the update"));
            break;  // one report per store
        }
    }
}

// ---------------------------------------------------------------------
// Static progress check
// ---------------------------------------------------------------------

std::vector<SpinWait>
findSpinWaits(const PassContext &ctx)
{
    std::vector<SpinWait> waits;
    const auto &code = ctx.kernel.code;
    for (const Loop &loop : ctx.cfg.loops()) {
        for (int blkId : loop.blocks) {
            const BasicBlock &blk = ctx.cfg.block(blkId);
            if (!blk.reachable || !isCondBranch(code[blk.last]))
                continue;
            bool exits = blkId == loop.backEdgeSrc;
            for (int succ : blk.succs)
                exits = exits || !loop.contains(succ);
            if (!exits)
                continue;
            std::set<int> slice =
                backslice(ctx, blk.last, code[blk.last].src0);
            for (int d : slice) {
                const isa::Instr &read = code[d];
                if ((read.op != Opcode::Ld &&
                     read.op != Opcode::Atom) ||
                    !loop.contains(
                        ctx.cfg.blockOf(static_cast<std::size_t>(d)))) {
                    continue;
                }
                auto dup = std::find_if(
                    waits.begin(), waits.end(), [&](const SpinWait &w) {
                        return w.readPc ==
                               static_cast<std::size_t>(d);
                    });
                if (dup == waits.end()) {
                    waits.push_back(
                        {static_cast<std::size_t>(d), blk.last,
                         ctx.df.addressOf(
                             static_cast<std::size_t>(d)),
                         &loop});
                }
            }
        }
    }
    return waits;
}

namespace {

/**
 * Concurrent-residency requirement for some WG to reach @p notifyPc
 * under a non-yielding policy: the product of all *counter gates* its
 * path must pass. A counter gate is a conditional branch whose
 * condition is an equality compare between a fetch-add-class atomic
 * result and a constant k — passing it requires k+1 distinct WGs to
 * have executed the atomic, and under a non-yielding policy all of
 * them are still resident (spinning on the event this notify
 * produces).
 */
std::int64_t
residencyNeed(const PassContext &ctx, std::size_t notifyPc)
{
    const auto &code = ctx.kernel.code;
    int nBlk = ctx.cfg.blockOf(notifyPc);
    std::int64_t need = 1;
    for (std::size_t pc_b = 0; pc_b < code.size(); ++pc_b) {
        const isa::Instr &br = code[pc_b];
        if (!isCondBranch(br) || !reachablePc(ctx, pc_b))
            continue;
        if (br.imm < 0 ||
            br.imm >= static_cast<std::int64_t>(code.size())) {
            continue;
        }
        int taken = ctx.cfg.blockOf(static_cast<std::size_t>(br.imm));
        int fall = pc_b + 1 < code.size()
                       ? ctx.cfg.blockOf(pc_b + 1)
                       : -1;
        if (taken < 0 || fall < 0 || taken == fall)
            continue;
        // Forward-path (DAG) reachability: is the notify only on one
        // side of this branch?
        bool viaTaken = ctx.cfg.reachableFrom(taken, -1,
                                              false)[nBlk] ||
                        taken == nBlk;
        bool viaFall =
            ctx.cfg.reachableFrom(fall, -1, false)[nBlk] ||
            fall == nBlk;
        if (viaTaken == viaFall)
            continue;

        // Condition must be an equality compare between an
        // accumulating atomic's result and a constant.
        for (int d : ctx.df.reachingDefs(pc_b, br.src0)) {
            if (d < 0 || !isEqualityCmp(code[d].op))
                continue;
            const isa::Instr &cmp = code[d];
            auto isCountSide = [&](Reg r) {
                for (int s : backslice(ctx, d, r)) {
                    const isa::Instr &src = code[s];
                    if ((src.op == Opcode::Atom ||
                         src.op == Opcode::AtomWait) &&
                        isAccumulatingAop(src.aop)) {
                        return true;
                    }
                }
                return false;
            };
            Interval rhs = cmp.useImm
                               ? Interval::constant(cmp.imm)
                               : ctx.df.value(d, cmp.src1);
            Interval lhs = ctx.df.value(d, cmp.src0);
            std::int64_t k = -1;
            if (rhs.isConst() && isCountSide(cmp.src0))
                k = rhs.lo;
            else if (lhs.isConst() && !cmp.useImm &&
                     isCountSide(cmp.src1)) {
                k = lhs.lo;
            }
            if (k < 1)
                continue;
            // Which successor is the "count == k" side?
            bool equalIsTaken = (cmp.op == Opcode::CmpEq) ==
                                (br.op == Opcode::Bnz);
            if ((equalIsTaken && viaTaken) ||
                (!equalIsTaken && viaFall)) {
                need = std::min(demandClamp,
                                need * std::min(demandClamp, k + 1));
                break;
            }
        }
    }
    return need;
}

} // anonymous namespace

void
runProgressPass(const PassContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &code = ctx.kernel.code;
    const LaunchContext &launch = ctx.df.launch();

    bool hasWaitInstrs = false;
    for (const isa::Instr &in : code)
        hasWaitInstrs = hasWaitInstrs || InstrEffects::isWaitOp(in);

    std::vector<SpinWait> waits = findSpinWaits(ctx);

    // Wait conditions with no matching notifier anywhere: spin waits
    // plus the explicit waiting instructions. Only bounded addresses
    // can be matched; host-initialized memory is invisible statically,
    // so this stays a warning.
    std::vector<std::size_t> waitPcs;
    for (const SpinWait &w : waits)
        waitPcs.push_back(w.readPc);
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (InstrEffects::isWaitOp(code[pc]) && reachablePc(ctx, pc))
            waitPcs.push_back(pc);
    }
    std::sort(waitPcs.begin(), waitPcs.end());
    waitPcs.erase(std::unique(waitPcs.begin(), waitPcs.end()),
                  waitPcs.end());
    for (std::size_t pc : waitPcs) {
        Interval addr = ctx.df.addressOf(pc);
        if (!addr.bounded())
            continue;
        bool notified = false;
        for (std::size_t n = 0; n < code.size() && !notified; ++n) {
            if (n == pc || !isGlobalWrite(code[n]) ||
                !reachablePc(ctx, n)) {
                continue;
            }
            Interval na = ctx.df.addressOf(n);
            notified = !na.bounded() || na.overlaps(addr);
        }
        // A wait op that itself writes (e.g. a waiting exchange) can
        // be satisfied by another WG executing the same instruction.
        notified = notified || isGlobalWrite(code[pc]);
        if (!notified) {
            out.push_back(makeDiag(
                ctx, "progress", "wait-no-notify", Severity::Warning,
                static_cast<int>(pc),
                "no instruction in this kernel ever writes the "
                "waited-on address",
                "add the releasing write, or document the "
                "host-initialized value this waits for"));
        }
    }

    // The residency check models non-yielding execution: a waiting WG
    // occupies its CU slot forever. Kernels carrying AtomWait/ArmWait
    // run under policies that can swap waiters out (the paper's fix),
    // so only wait-free kernels are checked.
    if (hasWaitInstrs)
        return;

    for (const SpinWait &w : waits) {
        if (!w.addr.bounded())
            continue;
        std::int64_t best = -1;
        for (std::size_t n = 0; n < code.size(); ++n) {
            if (!isGlobalWrite(code[n]) || !reachablePc(ctx, n))
                continue;
            // Writes inside the spin loop execute while still
            // waiting; they cannot be the unblocking notification.
            if (w.loop->contains(
                    ctx.cfg.blockOf(static_cast<std::size_t>(n)))) {
                continue;
            }
            Interval na = ctx.df.addressOf(n);
            if (!na.bounded() || !na.overlaps(w.addr))
                continue;
            std::int64_t need = residencyNeed(ctx, n);
            if (best < 0 || need < best)
                best = need;
        }
        if (best < 0)
            continue;  // covered by wait-no-notify (or unmatchable)
        std::int64_t demand = std::max<std::int64_t>(2, best);
        if (demand > launch.maxResidentWgs) {
            out.push_back(makeDiag(
                ctx, "progress", "insufficient-residency",
                Severity::Error, static_cast<int>(w.readPc),
                "spin-wait needs " + std::to_string(demand) +
                    " concurrently resident WGs to be notified, but "
                    "Baseline occupancy sustains only " +
                    std::to_string(launch.maxResidentWgs) + " of " +
                    std::to_string(launch.numWgs) +
                    " (guaranteed deadlock under non-yielding "
                    "policies)",
                "reduce the grid, raise occupancy, or use waiting "
                "synchronization (AtomWait/ArmWait) so blocked WGs "
                "can yield"));
        }
    }
}

} // namespace ifp::analysis
