#include "analysis/lint.hh"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "analysis/cfg.hh"
#include "analysis/passes.hh"

namespace ifp::analysis {

unsigned
baselineResidency(const isa::Kernel &kernel, unsigned num_cus,
                  unsigned simds_per_cu, unsigned wavefronts_per_simd,
                  unsigned lds_bytes_per_cu)
{
    unsigned wf_per_wg = kernel.wavefrontsPerWg();
    unsigned per_cu = kernel.maxWgsPerCu;
    if (wf_per_wg > 0) {
        per_cu = std::min(per_cu,
                          simds_per_cu * wavefronts_per_simd /
                              wf_per_wg);
    }
    if (kernel.ldsBytes > 0)
        per_cu = std::min(per_cu, lds_bytes_per_cu / kernel.ldsBytes);
    return std::min(kernel.numWgs, num_cus * per_cu);
}

LaunchContext
makeLaunchContext(const isa::Kernel &kernel, unsigned num_cus,
                  unsigned simds_per_cu, unsigned wavefronts_per_simd,
                  unsigned lds_bytes_per_cu)
{
    LaunchContext ctx;
    ctx.numWgs = kernel.numWgs;
    ctx.wavefrontsPerWg = kernel.wavefrontsPerWg();
    ctx.args.assign(kernel.args.begin(), kernel.args.end());
    ctx.maxResidentWgs =
        baselineResidency(kernel, num_cus, simds_per_cu,
                          wavefronts_per_simd, lds_bytes_per_cu);
    return ctx;
}

Report
runLint(const isa::Kernel &kernel, const LaunchContext &launch)
{
    Report report;
    report.kernel = kernel.name;

    Cfg cfg(kernel.code);
    Dataflow df(cfg, launch);
    PassContext ctx{kernel, cfg, df};

    runStructuralPass(ctx, report.diagnostics);
    runBarrierDivergencePass(ctx, report.diagnostics);
    runWovPass(ctx, report.diagnostics);
    runLostWakeupPass(ctx, report.diagnostics);
    runProgressPass(ctx, report.diagnostics);
    runInterferencePass(ctx, report.diagnostics);

    for (Diagnostic &d : report.diagnostics) {
        for (const isa::LintSuppression &s : kernel.lintSuppressions) {
            if (s.code == d.code) {
                d.suppressed = true;
                d.suppressReason = s.reason;
                d.severity = Severity::Note;
                break;
            }
        }
    }

    std::sort(report.diagnostics.begin(), report.diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  // Kernel-level findings (pc -1) sort last.
                  unsigned pa = a.pc < 0 ? ~0U : unsigned(a.pc);
                  unsigned pb = b.pc < 0 ? ~0U : unsigned(b.pc);
                  return std::tie(pa, a.pass, a.code, a.message) <
                         std::tie(pb, b.pass, b.code, b.message);
              });
    return report;
}

void
printReport(const Report &report, std::ostream &os)
{
    unsigned errors = report.count(Severity::Error);
    unsigned warnings = report.count(Severity::Warning);
    unsigned suppressed = 0;
    for (const Diagnostic &d : report.diagnostics)
        suppressed += d.suppressed ? 1 : 0;

    os << report.kernel << ": " << errors << " error(s), " << warnings
       << " warning(s)";
    if (suppressed > 0)
        os << ", " << suppressed << " suppressed";
    os << "\n";
    for (const Diagnostic &d : report.diagnostics) {
        os << "  [" << severityName(d.severity) << "] "
           << d.pass << "/" << d.code;
        if (d.pc >= 0)
            os << " pc " << d.pc << " `" << d.disasm << "`";
        os << ": " << d.message << "\n";
        if (d.suppressed)
            os << "      suppressed: " << d.suppressReason << "\n";
        else if (!d.hint.empty())
            os << "      hint: " << d.hint << "\n";
    }
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // anonymous namespace

void
writeReportsJson(const std::vector<Report> &reports, std::ostream &os)
{
    os << "{\n  \"kernels\": [";
    for (std::size_t k = 0; k < reports.size(); ++k) {
        const Report &r = reports[k];
        os << (k ? ",\n" : "\n") << "    {\n      \"kernel\": ";
        writeJsonString(os, r.kernel);
        os << ",\n      \"errors\": " << r.count(Severity::Error)
           << ",\n      \"warnings\": " << r.count(Severity::Warning)
           << ",\n      \"diagnostics\": [";
        for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
            const Diagnostic &d = r.diagnostics[i];
            os << (i ? ",\n" : "\n") << "        {\"pass\": ";
            writeJsonString(os, d.pass);
            os << ", \"code\": ";
            writeJsonString(os, d.code);
            os << ", \"severity\": \"" << severityName(d.severity)
               << "\", \"pc\": " << d.pc << ",\n         \"message\": ";
            writeJsonString(os, d.message);
            os << ",\n         \"disasm\": ";
            writeJsonString(os, d.disasm);
            os << ",\n         \"hint\": ";
            writeJsonString(os, d.hint);
            os << ",\n         \"suppressed\": "
               << (d.suppressed ? "true" : "false");
            if (d.suppressed) {
                os << ", \"suppressReason\": ";
                writeJsonString(os, d.suppressReason);
            }
            os << "}";
        }
        os << (r.diagnostics.empty() ? "]" : "\n      ]") << "\n    }";
    }
    os << (reports.empty() ? "]" : "\n  ]") << "\n}\n";
}

} // namespace ifp::analysis
