/**
 * @file
 * Abstract interpretation over a kernel Cfg.
 *
 * Three forward dataflow analyses share one fixpoint:
 *
 *  - **Interval propagation**: every register holds a signed interval
 *    [lo, hi] (INT64_MIN / INT64_MAX mark unbounded ends). Entry values
 *    come from the launch context — the register conventions r0 = 0,
 *    r1 = [0, numWgs-1], r2 = [0, wfPerWg-1], r3/r4 constants and the
 *    kernel arguments in r8.. — so buffer base addresses materialize as
 *    constants and per-WG addresses as disjoint bounded intervals.
 *  - **May-defined bits**: which registers have been written on at
 *    least one path (the convention registers and argument registers
 *    count as defined at entry). Reads of never-defined registers feed
 *    the use-before-def diagnostic.
 *  - **Divergence taint**: r2 (the wavefront id) and every value loaded
 *    from memory (Ld/LdLds/Atom/AtomWait results) are divergent across
 *    the wavefronts of one WG; taint propagates through ALU ops. A
 *    branch on a tainted register is a divergent branch.
 *
 * Reaching definitions are computed alongside (per def site, per pc)
 * for the window-of-vulnerability pass's same-abstract-address query.
 *
 * Joins widen to the unbounded sentinel after a few iterations, so the
 * fixpoint terminates on any loop structure.
 */

#ifndef IFP_ANALYSIS_DATAFLOW_HH
#define IFP_ANALYSIS_DATAFLOW_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/cfg.hh"
#include "isa/instruction.hh"

namespace ifp::analysis {

/** Launch-time facts the analyses need (no dependency on core/). */
struct LaunchContext
{
    unsigned numWgs = 1;          //!< grid size (r3, range of r1)
    unsigned wavefrontsPerWg = 1; //!< r4, range of r2
    std::vector<std::int64_t> args;  //!< kernel args, loaded into r8..

    /**
     * Concurrently resident WGs a non-yielding (Baseline) policy can
     * sustain: min(numWgs, CUs * per-CU occupancy). Used by the static
     * progress check (paper Figure 1).
     */
    unsigned maxResidentWgs = 1;

    /**
     * When >= 0, analyze the kernel from the viewpoint of this one
     * work-group: r1 becomes the constant pinnedWg instead of the
     * whole [0, numWgs-1] range, so per-WG addresses (flag arrays
     * indexed by wg id) materialize as exact constants. This is how
     * the interference analysis gets per-WG footprints out of the
     * shared interval dataflow.
     */
    int pinnedWg = -1;
};

/** A signed interval; INT64_MIN / INT64_MAX ends mean unbounded. */
struct Interval
{
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();

    static Interval top() { return {}; }
    static Interval constant(std::int64_t v) { return {v, v}; }
    static Interval range(std::int64_t lo, std::int64_t hi)
    {
        return {lo, hi};
    }

    bool isConst() const { return lo == hi; }
    /** Both ends finite (not the unbounded sentinels). */
    bool bounded() const;
    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Interval &o) const { return !(*this == o); }

    /** True when the two intervals can describe the same value. */
    bool overlaps(const Interval &o) const
    {
        return lo <= o.hi && o.lo <= hi;
    }

    Interval join(const Interval &o) const;
};

/** Register environment at one program point. */
struct AbstractState
{
    std::array<Interval, isa::numRegs> regs;
    /** Written on some path (or defined by convention at entry). */
    std::array<bool, isa::numRegs> defined{};
    /** May differ across wavefronts of one WG. */
    std::array<bool, isa::numRegs> divergent{};
};

/** Static read/write sets per the interpreter in compute_unit.cc. */
struct InstrEffects
{
    /** Registers @p instr reads, in operand order. */
    static std::vector<isa::Reg> reads(const isa::Instr &instr);
    /** True when @p instr writes its dst register. */
    static bool writesDst(const isa::Instr &instr);
    /** True for Ld/St/Atom/AtomWait/ArmWait (addr = r[src0] + imm). */
    static bool hasGlobalAddress(const isa::Instr &instr);
    /** True for instructions a WG can block on a condition with. */
    static bool isWaitOp(const isa::Instr &instr);
};

/** Fixpoint dataflow results for one kernel under one launch. */
class Dataflow
{
  public:
    Dataflow(const Cfg &cfg, const LaunchContext &launch);

    const Cfg &cfg() const { return graph; }
    const LaunchContext &launch() const { return ctx; }

    /** Register environment just before @p pc executes. */
    const AbstractState &stateBefore(std::size_t pc) const
    {
        return states[pc];
    }

    /** Interval of r[@p reg] just before @p pc. */
    Interval value(std::size_t pc, isa::Reg reg) const
    {
        return states[pc].regs[reg];
    }

    /** Abstract global address r[src0] + imm of the mem op at @p pc. */
    Interval addressOf(std::size_t pc) const;

    bool divergent(std::size_t pc, isa::Reg reg) const
    {
        return states[pc].divergent[reg];
    }

    bool mayBeDefined(std::size_t pc, isa::Reg reg) const
    {
        return states[pc].defined[reg];
    }

    /**
     * Definition sites of @p reg reaching @p pc, as sorted def pcs;
     * -1 denotes the entry (launch-initialized) definition.
     */
    std::vector<int> reachingDefs(std::size_t pc, isa::Reg reg) const;

    /** The entry environment (for kernel-level queries). */
    const AbstractState &entryState() const { return entry; }

  private:
    AbstractState transfer(const AbstractState &in,
                           const isa::Instr &instr) const;
    void runFixpoint();
    void runReachingDefs();

    const Cfg &graph;
    LaunchContext ctx;
    AbstractState entry;
    std::vector<AbstractState> states;     //!< per pc, before execution

    // Reaching definitions: def sites are (pc, reg) pairs; bitvector
    // per pc over the site indices (small kernels, plain bool works).
    struct DefSite
    {
        int pc;  //!< -1 for the entry definition
        isa::Reg reg;
    };
    std::vector<DefSite> defSites;
    std::vector<std::vector<bool>> reachIn;  //!< per pc
};

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_DATAFLOW_HH
