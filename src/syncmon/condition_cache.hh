/**
 * @file
 * SyncMon condition cache and waiting-WG list.
 *
 * Per the paper (§V.C): the condition cache is logically 4-way set
 * associative with 256 sets (1024 waiting conditions). A condition is
 * the hash of (monitored address, waiting value); each entry carries
 * two 9-bit pointers (head/tail) into a shared 512-entry waiting-WG
 * list. Combined hardware budget: 26112 bits (3.18 KB).
 *
 * Conditions holding waiters are never silently evicted — when a set
 * is full or the waiting list is exhausted, the SyncMon controller
 * spills to the Monitor Log (the virtualization interface).
 *
 * The MonRS (sporadic) policy monitors addresses rather than
 * (address, value) conditions; the cache supports that with an
 * address-only key mode per lookup.
 */

#ifndef IFP_SYNCMON_CONDITION_CACHE_HH
#define IFP_SYNCMON_CONDITION_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "syncmon/universal_hash.hh"

namespace ifp::syncmon {

/** A registered waiter: WG id plus its registration time. */
struct Waiter
{
    int wgId = -1;
    sim::Tick registeredTick = 0;
};

/**
 * The shared waiting-WG list: a freelist-managed pool of linked
 * nodes referenced by condition cache entries.
 */
class WaitingWgList
{
  public:
    explicit WaitingWgList(unsigned capacity = 512);

    /** Index of an allocated node, or -1 when the list is full. */
    int allocate(const Waiter &waiter);

    /** Return a node to the freelist. */
    void release(int index);

    Waiter &node(int index);
    int next(int index) const;
    void setNext(int index, int next_index);

    unsigned capacity() const { return nodes.size(); }
    unsigned inUse() const { return used; }
    unsigned maxInUse() const { return maxUsed; }

  private:
    struct Node
    {
        Waiter waiter;
        int next = -1;
        bool allocated = false;
    };

    std::vector<Node> nodes;
    int freeHead = 0;
    unsigned used = 0;
    unsigned maxUsed = 0;
};

/** The 4-way x 256-set condition cache. */
class ConditionCache
{
  public:
    struct Entry
    {
        bool valid = false;
        mem::Addr addr = 0;
        mem::MemValue value = 0;
        bool addrOnly = false;    //!< MonRS-style address condition
        int head = -1;            //!< first waiter node
        int tail = -1;            //!< last waiter node
        unsigned numWaiters = 0;
        sim::Tick createdTick = 0;
    };

    ConditionCache(unsigned num_sets = 256, unsigned num_ways = 4,
                   unsigned line_bytes = 64);

    /** Find the condition entry for (addr, value); null on miss. */
    Entry *find(mem::Addr addr, mem::MemValue value, bool addr_only);

    /**
     * Allocate an entry for (addr, value). Returns null when the set
     * is full — the caller spills to the Monitor Log.
     */
    Entry *insert(mem::Addr addr, mem::MemValue value, bool addr_only,
                  sim::Tick now);

    /** Invalidate an entry (its waiters must already be drained). */
    void remove(Entry *entry);

    /**
     * The youngest (most recently created) valid entry in the set
     * that (addr, value) maps to; null when the set is empty. Used by
     * the evict-youngest spill policy.
     */
    Entry *youngestInSet(mem::Addr addr, mem::MemValue value,
                         bool addr_only);

    /** Visit every valid condition on @p addr. */
    template <typename Fn>
    void
    forEachOnAddr(mem::Addr addr, Fn &&fn)
    {
        auto range = addrIndex.equal_range(addr);
        // Collect first: fn may remove entries and mutate the index.
        std::vector<Entry *> matches;
        for (auto it = range.first; it != range.second; ++it)
            matches.push_back(it->second);
        for (Entry *e : matches) {
            if (e->valid && e->addr == addr)
                fn(*e);
        }
    }

    /** Number of valid conditions on @p addr. */
    unsigned numConditionsOn(mem::Addr addr) const;

    unsigned numValid() const { return validCount; }
    unsigned maxValid() const { return maxValidCount; }
    unsigned capacity() const { return sets * ways; }

    /**
     * Hardware bits of the condition cache plus waiting-WG list, per
     * the paper's accounting (26112 bits for the default geometry).
     */
    std::uint64_t hardwareBits(unsigned waiting_list_capacity) const;

  private:
    std::size_t setOf(mem::Addr addr, mem::MemValue value,
                      bool addr_only) const;

    unsigned sets;
    unsigned ways;
    unsigned log2Entries;
    unsigned log2Line;
    UniversalHash hasher;
    std::vector<Entry> entries;
    std::unordered_multimap<mem::Addr, Entry *> addrIndex;
    unsigned validCount = 0;
    unsigned maxValidCount = 0;
};

} // namespace ifp::syncmon

#endif // IFP_SYNCMON_CONDITION_CACHE_HH
