#include "syncmon/bloom_filter.hh"

#include "sim/logging.hh"

namespace ifp::syncmon {

namespace {

/** Fixed, distinct hash-family members for the filter hashes. */
const UniversalHash bloomHashes[] = {
    UniversalHash(0x9E3779B97F4A7C15ULL, 0x7F4A7C15ULL),
    UniversalHash(0xBF58476D1CE4E5B9ULL, 0x1CE4E5B9ULL),
    UniversalHash(0x94D049BB133111EBULL, 0x133111EBULL),
    UniversalHash(0xD6E8FEB86659FD93ULL, 0x6659FD93ULL),
    UniversalHash(0xA0761D6478BD642FULL, 0x78BD642FULL),
    UniversalHash(0xE7037ED1A0B428DBULL, 0xA0B428DBULL),
    UniversalHash(0x8EBC6AF09C88C6E3ULL, 0x9C88C6E3ULL),
    UniversalHash(0x589965CC75374CC3ULL, 0x75374CC3ULL),
};

} // anonymous namespace

CountingBloomFilter::CountingBloomFilter(unsigned num_cells,
                                         unsigned num_hashes)
    : cells(num_cells, 0), hashes(num_hashes)
{
    ifp_assert(num_cells > 0, "bloom filter needs cells");
    ifp_assert(num_hashes > 0 &&
               num_hashes <= std::size(bloomHashes),
               "unsupported number of bloom hashes (%u)", num_hashes);
}

unsigned
CountingBloomFilter::cellFor(std::int64_t value, unsigned hash_idx) const
{
    return static_cast<unsigned>(
        bloomHashes[hash_idx](static_cast<std::uint64_t>(value)) %
        cells.size());
}

bool
CountingBloomFilter::mayContain(std::int64_t value) const
{
    for (unsigned h = 0; h < hashes; ++h) {
        if (cells[cellFor(value, h)] == 0)
            return false;
    }
    return true;
}

bool
CountingBloomFilter::observe(std::int64_t value)
{
    bool fresh = !mayContain(value);
    for (unsigned h = 0; h < hashes; ++h) {
        std::uint8_t &cell = cells[cellFor(value, h)];
        if (cell < 0xFF)
            ++cell;
    }
    if (fresh)
        ++uniques;
    return fresh;
}

void
CountingBloomFilter::reset()
{
    std::fill(cells.begin(), cells.end(), 0);
    uniques = 0;
}

BloomFilterBank::BloomFilterBank(unsigned num_filters, unsigned cells,
                                 unsigned num_hashes)
    : selector(0xFF51AFD7ED558CCDULL, 0xC4CEB9FE1A85EC53ULL)
{
    ifp_assert(num_filters > 0, "bloom bank needs filters");
    filters.reserve(num_filters);
    for (unsigned i = 0; i < num_filters; ++i)
        filters.emplace_back(cells, num_hashes);
}

CountingBloomFilter &
BloomFilterBank::filterFor(std::uint64_t addr)
{
    return filters[selector(addr) % filters.size()];
}

const CountingBloomFilter &
BloomFilterBank::filterFor(std::uint64_t addr) const
{
    return filters[selector(addr) % filters.size()];
}

void
BloomFilterBank::resetFor(std::uint64_t addr)
{
    filterFor(addr).reset();
}

} // namespace ifp::syncmon
