/**
 * @file
 * The Timeout waiting policy (§IV.C.ii): simplistic hardware support.
 *
 * No monitor exists. A failed waiting atomic simply stalls the WG for
 * a fixed interval (non-oversubscribed) or context switches it out
 * for the interval (oversubscribed), after which the WG retries —
 * there is no notification when the condition is actually met. The
 * paper shows no single interval works for every primitive (Figure 8)
 * and some intervals are much worse than busy-waiting.
 */

#ifndef IFP_SYNCMON_TIMEOUT_CONTROLLER_HH
#define IFP_SYNCMON_TIMEOUT_CONTROLLER_HH

#include "gpu/sched_iface.hh"
#include "mem/sync_hooks.hh"
#include "sim/types.hh"

namespace ifp::syncmon {

/** Fixed-interval timeout waiting policy. */
class TimeoutController : public mem::SyncObserver
{
  public:
    explicit TimeoutController(sim::Cycles interval_cycles)
        : interval(interval_cycles)
    {}

    void setScheduler(gpu::WgScheduler *s) { scheduler = s; }

    sim::Cycles intervalCycles() const { return interval; }

    mem::WaitDecision
    onWaitFail(const mem::MemRequest &req,
               mem::MemValue observed) override
    {
        (void)req;
        (void)observed;
        return decide();
    }

    mem::WaitDecision
    onArmWait(const mem::MemRequest &req) override
    {
        (void)req;
        return decide();
    }

    void
    onMonitoredAccess(mem::Addr addr, mem::MemValue new_value,
                      bool is_update, int by_wg) override
    {
        (void)addr;
        (void)new_value;
        (void)is_update;
        (void)by_wg;
        // No monitor: nothing ever notifies.
    }

    mem::WaitDecision
    onStallTimeout(int wg_id, mem::Addr addr,
                   mem::MemValue expected) override
    {
        (void)wg_id;
        (void)addr;
        (void)expected;
        // The interval elapsed: resume and retry (Mesa semantics).
        return {mem::WaitKind::Proceed, 0};
    }

  private:
    mem::WaitDecision
    decide()
    {
        bool starved = scheduler && scheduler->hasStarvedWork();
        if (starved)
            return {mem::WaitKind::Switch, interval};
        return {mem::WaitKind::Stall, interval};
    }

    sim::Cycles interval;
    gpu::WgScheduler *scheduler = nullptr;
};

} // namespace ifp::syncmon

#endif // IFP_SYNCMON_TIMEOUT_CONTROLLER_HH
