/**
 * @file
 * The Synchronization Monitor (SyncMon) controller.
 *
 * Attached to the L2 (where GPU atomics execute), the SyncMon
 * implements the paper's family of monitor-based waiting policies:
 *
 *  - MonRS-All : wait-instructions arm *address* conditions; any
 *                access to a monitored address sporadically resumes
 *                all of its waiters without checking the condition.
 *  - MonR-All  : wait-instructions arm (address, value) conditions;
 *                updates that meet a condition resume all its waiters.
 *                Subject to the window-of-vulnerability race.
 *  - MonNR-All : *waiting atomics* register conditions atomically at
 *                the L2 (no race); resume all on condition met.
 *  - MonNR-One : as MonNR-All but resumes one waiter per met update;
 *                the rest resume on later updates or by timeout.
 *  - AWG       : MonNR plus the resume predictor (waiter count +
 *                Bloom-filter unique-update count) and the stall-
 *                period predictor that delays context switches.
 *  - MinResume : the oracle of Figure 9 — a waiter is resumed only
 *                when its condition actually holds, one at a time.
 *
 * Capacity overflows spill through the Command Processor into the
 * Monitor Log (virtualization); a full log makes the waiting atomic
 * fail without waiting (Mesa retry).
 */

#ifndef IFP_SYNCMON_SYNC_MONITOR_HH
#define IFP_SYNCMON_SYNC_MONITOR_HH

#include <unordered_map>

#include "cp/command_processor.hh"
#include "gpu/sched_iface.hh"
#include "mem/backing_store.hh"
#include "mem/l2_cache.hh"
#include "mem/sync_hooks.hh"
#include "sim/clocked.hh"
#include "sim/sched_oracle.hh"
#include "sim/stats.hh"
#include "sim/trace_sink.hh"
#include "syncmon/bloom_filter.hh"
#include "syncmon/condition_cache.hh"

namespace ifp::syncmon {

/** Which resume policy the SyncMon runs. */
enum class SyncMonMode
{
    MonRSAll,   //!< sporadic notify, resume all
    MonRAll,    //!< condition check on update, resume all (racy arm)
    MonNRAll,   //!< waiting atomics, resume all
    MonNROne,   //!< waiting atomics, resume one
    Awg,        //!< waiting atomics + resume/stall prediction
    MinResume,  //!< oracle: resume exactly the waiters that can run
};

/** Printable name of a mode. */
const char *syncMonModeName(SyncMonMode mode);

/**
 * What happens when a condition cache set is full (the paper leaves
 * the study of Monitor Log replacement/fairness policies as future
 * work; both options are implemented here).
 */
enum class SpillPolicy
{
    SpillNew,        //!< the arriving condition goes to the log
    EvictYoungest,   //!< the set's youngest condition is demoted
};

/** SyncMon hardware/behaviour configuration (defaults per §V.C). */
struct SyncMonConfig
{
    unsigned sets = 256;
    unsigned ways = 4;
    unsigned waitingListCapacity = 512;
    unsigned bloomFilters = 512;
    unsigned bloomCells = 24;
    unsigned bloomHashes = 6;

    /** Backstop timeout re-activating waiters, in GPU cycles. */
    sim::Cycles rescueIntervalCycles = 20'000;
    /** AWG: floor of the predicted stall window. */
    sim::Cycles minStallCycles = 500;
    /** AWG: default prediction before any observation. */
    sim::Cycles defaultStallCycles = 2'000;
    /** AWG: EWMA weight of new wait-latency observations. */
    double ewmaAlpha = 0.25;
    /** AWG predictor: unique updates above this mean "resume all". */
    unsigned uniqueUpdateThreshold = 2;
    /**
     * AWG's stall-period prediction (stall for a predicted window
     * before paying for a context switch). Disabling it makes AWG
     * switch immediately when oversubscribed, like the MonNR
     * policies — the ablation knob for §IV.B's optimization.
     */
    bool stallPredictionEnabled = true;
    /** Set-conflict handling (virtualization fairness study). */
    SpillPolicy spillPolicy = SpillPolicy::SpillNew;
    /**
     * Lazy monitor cleanup: a line stays monitored (and its Bloom
     * filter keeps accumulating) for this many cycles after its last
     * condition retires. Eagerly clearing tag bits on the retire path
     * would be expensive hardware; the grace period also lets the
     * predictor see the arrival bursts of back-to-back barrier
     * rounds.
     */
    sim::Cycles monitorIdleCycles = 50'000;
};

/** The SyncMon: a mem::SyncObserver installed into the L2. */
class SyncMonController : public sim::Clocked,
                          public mem::SyncObserver,
                          public cp::SpillObserver
{
  public:
    SyncMonController(std::string name, sim::EventQueue &eq,
                      SyncMonMode mode, const SyncMonConfig &cfg,
                      mem::L2Cache &l2, mem::BackingStore &store,
                      cp::CommandProcessor &cp);

    void setScheduler(gpu::WgScheduler *s) { scheduler = s; }
    void setTraceSink(sim::TraceSink *sink) { trace = sink; }
    /** Schedule-choice oracle for resume victim/order decisions. */
    void setSchedOracle(sim::SchedOracle *o) { oracle = o; }

    /// @name mem::SyncObserver
    /// @{
    mem::WaitDecision onWaitFail(const mem::MemRequest &req,
                                 mem::MemValue observed) override;
    mem::WaitDecision onArmWait(const mem::MemRequest &req) override;
    void onMonitoredAccess(mem::Addr addr, mem::MemValue new_value,
                           bool is_update, int by_wg) override;
    mem::WaitDecision onStallTimeout(int wg_id, mem::Addr addr,
                                     mem::MemValue expected) override;
    /// @}

    /// @name cp::SpillObserver
    ///
    /// A condition virtualized into the Monitor Log is still a live
    /// condition on its line: the monitored bit must stay set (so the
    /// Bloom filter keeps observing updates during the spill window)
    /// and the lazy cleanup must not reset predictor state while the
    /// CP still tracks waiters for the line. The CP reports each
    /// spilled condition it retires so the per-line refcount balances.
    /// @{
    void onSpilledCondRemoved(mem::Addr addr, int wg_id) override;
    /// @}

    SyncMonMode mode() const { return policyMode; }

    /// @name Fault-injection hooks (core/fault_plan.hh)
    ///
    /// Plain depth counters flipped by GpuSystem-scheduled fault
    /// edges; windows may nest/overlap, and a window ends only when
    /// its depth returns to zero. Kept as dumb setters so this layer
    /// never depends on core.
    /// @{
    /** Condition cache reports itself full: every new waiter spills. */
    void beginCapacityPressure() { ++pressureDepth; }
    void endCapacityPressure() { if (pressureDepth) --pressureDepth; }
    /** Resume notifications are silently lost (MonR-style WoV race). */
    void beginResumeDrop() { ++dropDepth; }
    void endResumeDrop() { if (dropDepth) --dropDepth; }
    /** Resume notifications are deferred by @p delay_cycles. */
    void beginResumeDelay(sim::Cycles delay_cycles);
    void endResumeDelay();
    /// @}

    /// @name Hardware budget and Figure 13 accounting
    /// @{
    std::uint64_t conditionCacheBits() const;
    std::uint64_t bloomBits() const { return blooms.sizeBits(); }
    unsigned maxConditions() const { return conds.maxValid(); }
    unsigned maxWaiters() const { return waiters.maxInUse(); }
    /** AWG predictor state for @p addr's line (tests/benches). */
    unsigned
    bloomUniquesFor(mem::Addr addr) const
    {
        return blooms.filterFor(lineOf(addr)).uniqueCount();
    }
    /** Live-condition refcount of @p addr's line (tests). */
    unsigned
    lineCondCount(mem::Addr addr) const
    {
        auto it = lineConds.find(lineOf(addr));
        return it == lineConds.end() ? 0 : it->second;
    }
    /// @}

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    bool usesAddrOnlyConditions() const
    {
        return policyMode == SyncMonMode::MonRSAll;
    }

    /**
     * Register (addr, expected, wg) in the condition cache; spills to
     * the Monitor Log on overflow. Returns the resulting decision.
     */
    mem::WaitDecision registerWaiter(mem::Addr addr,
                                     mem::MemValue expected, int wg_id);

    /** Pop and resume the first waiter of @p entry. */
    void resumeOne(ConditionCache::Entry &entry);

    /** Resume every waiter and remove the condition. */
    void resumeAll(ConditionCache::Entry &entry);

    /** Remove a specific WG's waiter nodes from @p entry. */
    void removeWaiter(ConditionCache::Entry &entry, int wg_id);

    /**
     * Deliver a resume to the scheduler, honouring any active
     * DropResume / DelayResume fault window. Every monitor-initiated
     * resume funnels through here; CP rescues deliberately do not
     * (the rescue backstop is what the faults stress-test).
     */
    void notifyResume(int wg_id);

    /**
     * Demote @p entry and all its waiters to the Monitor Log.
     * @return false when the log lacks room (entry left untouched).
     */
    bool demoteToLog(ConditionCache::Entry &entry);

    /** Drop the condition if it has no waiters left. */
    void maybeRetire(ConditionCache::Entry &entry);

    /** Bookkeeping around condition insertion/retirement. */
    void noteConditionInserted(mem::Addr addr);
    void noteConditionRemoved(mem::Addr addr);

    /**
     * Account a condition successfully spilled to the Monitor Log:
     * the line stays monitored and its refcount grows by one per
     * spilled waiter until the CP reports the retirement back.
     */
    void noteConditionSpilled(mem::Addr addr);

    /** AWG accuracy: record a predictor-initiated resume. */
    void notePredictedResume(int wg_id, mem::Addr addr,
                             mem::MemValue value);

    /** Line base of @p addr (monitored bits/Blooms are per line). */
    mem::Addr
    lineOf(mem::Addr addr) const
    {
        return addr & ~static_cast<mem::Addr>(
                   l2.config().lineBytes - 1);
    }

    /** Stall-vs-switch decision for a freshly registered waiter. */
    mem::WaitDecision waitDecisionFor(mem::Addr addr);

    /** AWG stall-period prediction for @p addr, in cycles. */
    sim::Cycles predictStall(mem::Addr addr) const;

    /** Record an observed wait latency for the stall predictor. */
    void observeWaitLatency(mem::Addr addr, sim::Tick waited);

    SyncMonMode policyMode;
    SyncMonConfig config;
    mem::L2Cache &l2;
    mem::BackingStore &store;
    cp::CommandProcessor &cp;
    gpu::WgScheduler *scheduler = nullptr;
    sim::TraceSink *trace = nullptr;
    sim::SchedOracle *oracle = nullptr;

    ConditionCache conds;
    WaitingWgList waiters;
    BloomFilterBank blooms;

    /** AWG stall-period predictor state (EWMA per address). */
    std::unordered_map<mem::Addr, double> stallEwma;

    /**
     * AWG accuracy bookkeeping: the condition each WG was last
     * resumed on by the predictor. A WG re-registering for the same
     * (addr, value) was woken for nothing — a misprediction; any
     * registration clears the mark.
     */
    std::unordered_map<int, std::pair<mem::Addr, mem::MemValue>>
        lastPredictedResume;

    /// @name Active fault-window state
    /// @{
    unsigned pressureDepth = 0;
    unsigned dropDepth = 0;
    unsigned delayDepth = 0;
    /** Max delay across nested DelayResume windows, in cycles. */
    sim::Cycles resumeDelayCycles = 0;
    /// @}

    /** Live conditions per monitored line (lazy cleanup refcount). */
    std::unordered_map<mem::Addr, unsigned> lineConds;
    /** Tick at which a line's last condition retired. */
    std::unordered_map<mem::Addr, sim::Tick> lineIdleSince;

    sim::StatGroup statGroup;
    sim::Scalar &registrations;
    sim::Scalar &spills;
    sim::Scalar &logFullRetries;
    sim::Scalar &resumesAllStat;
    sim::Scalar &resumesOneStat;
    sim::Scalar &sporadicResumes;
    sim::Scalar &predictAll;
    sim::Scalar &predictOne;
    sim::Scalar &predictedResumes;
    sim::Scalar &mispredictedResumes;
    sim::Scalar &bloomResets;
    sim::Scalar &stallTimeouts;
    sim::Scalar &switchedOnTimeout;
    sim::Scalar &evictionsToLog;
    sim::Scalar &forcedSpills;
    sim::Scalar &droppedResumesStat;
    sim::Scalar &delayedResumesStat;
    /** Distribution of observed condition-met latencies (cycles). */
    sim::Histogram &waitLatency;
};

} // namespace ifp::syncmon

#endif // IFP_SYNCMON_SYNC_MONITOR_HH
