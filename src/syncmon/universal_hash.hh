/**
 * @file
 * Carter-Wegman universal hashing [63 in the paper].
 *
 * The SyncMon hashes (monitored address, waiting value) pairs into its
 * condition cache with a universal hash function; the Bloom filters
 * use a family of pairwise-independent hash functions from the same
 * construction.
 */

#ifndef IFP_SYNCMON_UNIVERSAL_HASH_HH
#define IFP_SYNCMON_UNIVERSAL_HASH_HH

#include <cstdint>

namespace ifp::syncmon {

/**
 * One member of a universal hash family: h(x) = ((a*x + b) mod p),
 * with p a Mersenne prime (2^61 - 1) and a, b fixed per instance.
 */
class UniversalHash
{
  public:
    explicit UniversalHash(std::uint64_t a = 0x5DEECE66DULL,
                           std::uint64_t b = 0xB)
        : multiplier(a % prime), addend(b % prime)
    {
        if (multiplier == 0)
            multiplier = 1;
    }

    std::uint64_t
    operator()(std::uint64_t x) const
    {
        // 128-bit multiply, then reduce modulo 2^61 - 1.
        unsigned __int128 prod =
            static_cast<unsigned __int128>(multiplier) * (x % prime) +
            addend;
        std::uint64_t lo = static_cast<std::uint64_t>(prod & prime);
        std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
        std::uint64_t r = lo + hi;
        if (r >= prime)
            r -= prime;
        return r;
    }

    static constexpr std::uint64_t prime = (1ULL << 61) - 1;

  private:
    std::uint64_t multiplier;
    std::uint64_t addend;
};

/**
 * The paper's condition key: the address is shifted left by the log of
 * the number of cache entries (after dropping the cacheline offset)
 * and bitwise ORed with the waiting value, then universally hashed.
 */
inline std::uint64_t
conditionKey(std::uint64_t addr, std::int64_t value,
             unsigned log2_entries, unsigned log2_line)
{
    std::uint64_t a = (addr >> log2_line) << log2_entries;
    return a | (static_cast<std::uint64_t>(value) &
                ((1ULL << log2_entries) - 1));
}

} // namespace ifp::syncmon

#endif // IFP_SYNCMON_UNIVERSAL_HASH_HH
