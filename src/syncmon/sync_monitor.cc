#include "syncmon/sync_monitor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::syncmon {

const char *
syncMonModeName(SyncMonMode mode)
{
    switch (mode) {
      case SyncMonMode::MonRSAll: return "MonRS-All";
      case SyncMonMode::MonRAll: return "MonR-All";
      case SyncMonMode::MonNRAll: return "MonNR-All";
      case SyncMonMode::MonNROne: return "MonNR-One";
      case SyncMonMode::Awg: return "AWG";
      case SyncMonMode::MinResume: return "MinResume";
    }
    return "?";
}

SyncMonController::SyncMonController(std::string name,
                                     sim::EventQueue &eq,
                                     SyncMonMode mode,
                                     const SyncMonConfig &cfg,
                                     mem::L2Cache &l2_cache,
                                     mem::BackingStore &backing,
                                     cp::CommandProcessor &cp_dev)
    : Clocked(std::move(name), eq, l2_cache.config().clockPeriod),
      policyMode(mode),
      config(cfg),
      l2(l2_cache),
      store(backing),
      cp(cp_dev),
      conds(cfg.sets, cfg.ways, l2_cache.config().lineBytes),
      waiters(cfg.waitingListCapacity),
      blooms(cfg.bloomFilters, cfg.bloomCells, cfg.bloomHashes),
      statGroup(this->name()),
      registrations(statGroup.addScalar("registrations",
                                        "waiting conditions armed")),
      spills(statGroup.addScalar("spills",
                                 "conditions spilled to the log")),
      logFullRetries(statGroup.addScalar(
          "logFullRetries", "waits rejected because the log was full")),
      resumesAllStat(statGroup.addScalar("resumesAll",
                                         "resume-all events")),
      resumesOneStat(statGroup.addScalar("resumesOne",
                                         "resume-one events")),
      sporadicResumes(statGroup.addScalar(
          "sporadicResumes", "MonRS sporadic notify events")),
      predictAll(statGroup.addScalar("predictAll",
                                     "AWG resume-all predictions")),
      predictOne(statGroup.addScalar("predictOne",
                                     "AWG resume-one predictions")),
      predictedResumes(statGroup.addScalar(
          "predictedResumes", "waiters resumed by the AWG predictor")),
      mispredictedResumes(statGroup.addScalar(
          "mispredictedResumes",
          "predicted resumes that re-registered the same condition")),
      bloomResets(statGroup.addScalar("bloomResets",
                                      "Bloom filter resets")),
      stallTimeouts(statGroup.addScalar("stallTimeouts",
                                        "stall windows that expired")),
      switchedOnTimeout(statGroup.addScalar(
          "switchedOnTimeout",
          "AWG context switches after stall misprediction")),
      evictionsToLog(statGroup.addScalar(
          "evictionsToLog",
          "conditions demoted to the log (evict-youngest policy)")),
      forcedSpills(statGroup.addScalar(
          "forcedSpills",
          "spills forced by SyncMonPressure fault windows")),
      droppedResumesStat(statGroup.addScalar(
          "droppedResumes",
          "resume notifications lost to DropResume fault windows")),
      delayedResumesStat(statGroup.addScalar(
          "delayedResumes",
          "resume notifications deferred by DelayResume windows")),
      waitLatency(statGroup.addHistogram(
          "waitLatency", 0.0, 50'000.0, 20,
          "observed condition-met latencies, in cycles"))
{
    l2.setSyncObserver(this);
}

std::uint64_t
SyncMonController::conditionCacheBits() const
{
    return conds.hardwareBits(config.waitingListCapacity);
}

sim::Cycles
SyncMonController::predictStall(mem::Addr addr) const
{
    auto it = stallEwma.find(addr);
    if (it == stallEwma.end())
        return config.defaultStallCycles;
    return static_cast<sim::Cycles>(it->second / clockPeriod());
}

void
SyncMonController::observeWaitLatency(mem::Addr addr, sim::Tick waited)
{
    waitLatency.sample(static_cast<double>(waited) /
                       static_cast<double>(clockPeriod()));
    auto [it, fresh] = stallEwma.try_emplace(
        addr, static_cast<double>(waited));
    if (!fresh) {
        it->second = config.ewmaAlpha * static_cast<double>(waited) +
                     (1.0 - config.ewmaAlpha) * it->second;
    }
}

mem::WaitDecision
SyncMonController::waitDecisionFor(mem::Addr addr)
{
    bool starved = scheduler && scheduler->hasStarvedWork();
    if (policyMode == SyncMonMode::Awg &&
        config.stallPredictionEnabled) {
        if (!starved) {
            return {mem::WaitKind::Stall, config.rescueIntervalCycles};
        }
        // Stall for the predicted wait first; the timeout handler
        // context switches only if the prediction was wrong.
        sim::Cycles predicted = 2 * predictStall(addr);
        predicted = std::clamp(predicted, config.minStallCycles,
                               config.rescueIntervalCycles);
        return {mem::WaitKind::Stall, predicted};
    }
    if (starved)
        return {mem::WaitKind::Switch, config.rescueIntervalCycles};
    return {mem::WaitKind::Stall, config.rescueIntervalCycles};
}

mem::WaitDecision
SyncMonController::registerWaiter(mem::Addr addr, mem::MemValue expected,
                                  int wg_id)
{
    ++registrations;
    bool addr_only = usesAddrOnlyConditions();

    // AWG accuracy: a WG the predictor resumed that comes straight
    // back for the same condition was woken for nothing.
    auto predicted = lastPredictedResume.find(wg_id);
    if (predicted != lastPredictedResume.end()) {
        if (predicted->second.first == addr &&
            predicted->second.second == expected) {
            ++mispredictedResumes;
        }
        lastPredictedResume.erase(predicted);
    }

    if (pressureDepth > 0) {
        // SyncMonPressure fault window: the condition cache reports
        // itself full, so every new waiter exercises the Monitor Log
        // virtualization path mid-run.
        ++forcedSpills;
        ++spills;
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::CondSpilled, wg_id, -1,
                       sim::StallReason::Running, addr,
                       static_cast<std::int64_t>(expected));
        if (!cp.spillCondition(addr, expected, wg_id)) {
            ++logFullRetries;
            return {mem::WaitKind::Retry, 0};
        }
        noteConditionSpilled(addr);
        return waitDecisionFor(addr);
    }

    ConditionCache::Entry *entry = conds.find(addr, expected, addr_only);
    bool inserted_now = false;
    if (!entry) {
        entry = conds.insert(addr, expected, addr_only, curTick());
        inserted_now = entry != nullptr;
    }

    if (!entry && config.spillPolicy == SpillPolicy::EvictYoungest) {
        // Demote the set's youngest condition to the Monitor Log so
        // older conditions keep their fast hardware monitoring (the
        // replacement-policy study the paper defers).
        ConditionCache::Entry *victim =
            conds.youngestInSet(addr, expected, addr_only);
        if (victim && demoteToLog(*victim)) {
            entry = conds.insert(addr, expected, addr_only,
                                 curTick());
            inserted_now = entry != nullptr;
        }
    }

    if (!entry) {
        // Condition cache set conflict: virtualize via the Monitor
        // Log. The CP will check the spilled condition periodically.
        ++spills;
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::CondSpilled, wg_id, -1,
                       sim::StallReason::Running, addr,
                       static_cast<std::int64_t>(expected));
        if (!cp.spillCondition(addr, expected, wg_id)) {
            ++logFullRetries;
            return {mem::WaitKind::Retry, 0};
        }
        noteConditionSpilled(addr);
        return waitDecisionFor(addr);
    }
    if (inserted_now)
        noteConditionInserted(addr);

    // Deduplicate: a rescued WG re-registering must not grow the list.
    bool already = false;
    for (int n = entry->head; n >= 0; n = waiters.next(n)) {
        if (waiters.node(n).wgId == wg_id) {
            already = true;
            break;
        }
    }

    if (!already) {
        int node = waiters.allocate(Waiter{wg_id, curTick()});
        if (node < 0) {
            // Waiting-WG list full: spill this waiter.
            ++spills;
            sim::emitTrace(trace, curTick(),
                           sim::TraceEventKind::CondSpilled, wg_id, -1,
                           sim::StallReason::Running, addr,
                           static_cast<std::int64_t>(expected));
            if (inserted_now && entry->numWaiters == 0) {
                conds.remove(entry);
                noteConditionRemoved(addr);
            }
            if (!cp.spillCondition(addr, expected, wg_id)) {
                ++logFullRetries;
                return {mem::WaitKind::Retry, 0};
            }
            noteConditionSpilled(addr);
            return waitDecisionFor(addr);
        }
        if (entry->tail >= 0)
            waiters.setNext(entry->tail, node);
        else
            entry->head = node;
        entry->tail = node;
        ++entry->numWaiters;
    }

    l2.setMonitored(addr, true);
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CondArmed,
                   wg_id, -1, sim::StallReason::Running, addr,
                   static_cast<std::int64_t>(expected));
    return waitDecisionFor(addr);
}

mem::WaitDecision
SyncMonController::onWaitFail(const mem::MemRequest &req,
                              mem::MemValue observed)
{
    (void)observed;
    return registerWaiter(req.addr, mem::waitExpectedOf(req), req.wgId);
}

mem::WaitDecision
SyncMonController::onArmWait(const mem::MemRequest &req)
{
    return registerWaiter(req.addr, req.expected, req.wgId);
}

void
SyncMonController::resumeOne(ConditionCache::Entry &entry)
{
    if (entry.numWaiters == 0)
        return;
    int node = entry.head;
    if (oracle && entry.numWaiters > 1) {
        // Any registered waiter is a legal victim; the FIFO head is
        // merely the stock pick (preferred index 0).
        std::vector<int> nodes;
        for (int n = entry.head; n >= 0; n = waiters.next(n))
            nodes.push_back(n);
        std::vector<int> actor_wgs;
        actor_wgs.reserve(nodes.size());
        for (int n : nodes)
            actor_wgs.push_back(waiters.node(n).wgId);
        unsigned pick =
            oracle->chooseWithActors(sim::ChoicePoint::ResumeVictim,
                                     static_cast<unsigned>(nodes.size()),
                                     0, actor_wgs.data());
        node = nodes[pick];
        if (pick > 0) {
            int prev = nodes[pick - 1];
            waiters.setNext(prev, waiters.next(node));
            if (entry.tail == node)
                entry.tail = prev;
        }
    }
    Waiter w = waiters.node(node);
    if (node == entry.head) {
        entry.head = waiters.next(node);
        if (entry.head < 0)
            entry.tail = -1;
    }
    waiters.release(node);
    --entry.numWaiters;
    ++resumesOneStat;
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CondFired,
                   w.wgId, -1, sim::StallReason::Running, entry.addr,
                   1);

    observeWaitLatency(entry.addr, curTick() - w.registeredTick);
    mem::Addr addr = entry.addr;
    mem::MemValue value = entry.value;
    maybeRetire(entry);
    notePredictedResume(w.wgId, addr, value);
    notifyResume(w.wgId);
}

void
SyncMonController::resumeAll(ConditionCache::Entry &entry)
{
    ++resumesAllStat;
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CondFired,
                   -1, -1, sim::StallReason::Running, entry.addr,
                   static_cast<std::int64_t>(entry.numWaiters));
    std::vector<int> wg_ids;
    for (int n = entry.head; n >= 0;) {
        Waiter w = waiters.node(n);
        observeWaitLatency(entry.addr, curTick() - w.registeredTick);
        wg_ids.push_back(w.wgId);
        int next = waiters.next(n);
        waiters.release(n);
        n = next;
    }
    entry.head = -1;
    entry.tail = -1;
    entry.numWaiters = 0;
    mem::Addr addr = entry.addr;
    mem::MemValue value = entry.value;
    maybeRetire(entry);
    sim::oraclePermute(oracle, sim::ChoicePoint::ResumeOrder, wg_ids);
    for (int wg_id : wg_ids) {
        notePredictedResume(wg_id, addr, value);
        notifyResume(wg_id);
    }
}

void
SyncMonController::notifyResume(int wg_id)
{
    if (!scheduler)
        return;
    if (dropDepth > 0) {
        // The lost-wakeup scenario: the condition fired, the waiter
        // was already unlinked, and the notification evaporates. Only
        // the CP rescue backstop (or the liveness oracle's verdict)
        // can save the WG now.
        ++droppedResumesStat;
        return;
    }
    if (delayDepth > 0 && resumeDelayCycles > 0) {
        ++delayedResumesStat;
        eventq().schedule(clockEdge(resumeDelayCycles), [this, wg_id] {
            if (scheduler)
                scheduler->resumeWg(wg_id);
        }, name() + ".delayedResume");
        return;
    }
    scheduler->resumeWg(wg_id);
}

void
SyncMonController::beginResumeDelay(sim::Cycles delay_cycles)
{
    ++delayDepth;
    resumeDelayCycles = std::max(resumeDelayCycles, delay_cycles);
}

void
SyncMonController::endResumeDelay()
{
    if (delayDepth && --delayDepth == 0)
        resumeDelayCycles = 0;
}

bool
SyncMonController::demoteToLog(ConditionCache::Entry &entry)
{
    if (cp.monitorLog().freeEntries() < entry.numWaiters)
        return false;
    ++evictionsToLog;
    mem::Addr addr = entry.addr;
    for (int n = entry.head; n >= 0;) {
        const Waiter &w = waiters.node(n);
        bool ok = cp.spillCondition(entry.addr, entry.value, w.wgId);
        ifp_assert(ok, "monitor log filled during demotion");
        ++spills;
        noteConditionSpilled(entry.addr);
        int next = waiters.next(n);
        waiters.release(n);
        n = next;
    }
    entry.head = -1;
    entry.tail = -1;
    entry.numWaiters = 0;
    conds.remove(&entry);
    noteConditionRemoved(addr);
    return true;
}

void
SyncMonController::removeWaiter(ConditionCache::Entry &entry, int wg_id)
{
    int prev = -1;
    int n = entry.head;
    while (n >= 0) {
        int next = waiters.next(n);
        if (waiters.node(n).wgId == wg_id) {
            if (prev >= 0)
                waiters.setNext(prev, next);
            else
                entry.head = next;
            if (entry.tail == n)
                entry.tail = prev;
            waiters.release(n);
            --entry.numWaiters;
        } else {
            prev = n;
        }
        n = next;
    }
}

void
SyncMonController::maybeRetire(ConditionCache::Entry &entry)
{
    if (entry.numWaiters > 0)
        return;
    mem::Addr addr = entry.addr;
    conds.remove(&entry);
    noteConditionRemoved(addr);
}

void
SyncMonController::noteConditionInserted(mem::Addr addr)
{
    mem::Addr line = lineOf(addr);
    ++lineConds[line];
    lineIdleSince.erase(line);
}

void
SyncMonController::noteConditionSpilled(mem::Addr addr)
{
    // One refcount per spilled waiter: the CP reports retirements per
    // SpilledCond entry, so insertions must match that granularity.
    // Keeping the line monitored through the spill window is what
    // keeps the AWG Bloom filter observing updates (and the lazy
    // cleanup from resetting it) while the waiters sit in the log.
    mem::Addr line = lineOf(addr);
    ++lineConds[line];
    lineIdleSince.erase(line);
    l2.setMonitored(addr, true);
}

void
SyncMonController::onSpilledCondRemoved(mem::Addr addr, int wg_id)
{
    (void)wg_id;
    noteConditionRemoved(addr);
}

void
SyncMonController::notePredictedResume(int wg_id, mem::Addr addr,
                                       mem::MemValue value)
{
    if (policyMode != SyncMonMode::Awg)
        return;
    ++predictedResumes;
    lastPredictedResume[wg_id] = {addr, value};
}

void
SyncMonController::noteConditionRemoved(mem::Addr addr)
{
    mem::Addr line = lineOf(addr);
    auto it = lineConds.find(line);
    ifp_assert(it != lineConds.end() && it->second > 0,
               "line condition refcount underflow");
    if (--it->second > 0)
        return;

    // Lazy cleanup: keep the monitored bit (and the Bloom state) for
    // a grace period. Only when the line stays condition-free does
    // the bit clear and — per the paper — the Bloom filter reset.
    sim::Tick marked = curTick();
    lineIdleSince[line] = marked;
    eventq().schedule(clockEdge(config.monitorIdleCycles),
                      [this, line, marked] {
        auto idle = lineIdleSince.find(line);
        if (idle == lineIdleSince.end() || idle->second != marked)
            return;  // re-monitored (or a newer idle mark) meanwhile
        lineIdleSince.erase(idle);
        l2.setMonitored(line, false);
        if (policyMode == SyncMonMode::Awg) {
            blooms.resetFor(line);
            ++bloomResets;
        }
    }, name() + ".monitorIdle");
}

void
SyncMonController::onMonitoredAccess(mem::Addr addr,
                                     mem::MemValue new_value,
                                     bool is_update, int by_wg)
{
    (void)by_wg;
    switch (policyMode) {
      case SyncMonMode::MonRSAll: {
        // Sporadic: any access notifies, no condition check.
        ConditionCache::Entry *e = conds.find(addr, 0, true);
        if (e) {
            ++sporadicResumes;
            resumeAll(*e);
        }
        return;
      }
      case SyncMonMode::MonRAll:
      case SyncMonMode::MonNRAll: {
        if (!is_update)
            return;
        ConditionCache::Entry *e = conds.find(addr, new_value, false);
        if (e)
            resumeAll(*e);
        return;
      }
      case SyncMonMode::MonNROne: {
        if (!is_update)
            return;
        ConditionCache::Entry *e = conds.find(addr, new_value, false);
        if (e)
            resumeOne(*e);
        return;
      }
      case SyncMonMode::Awg: {
        // The Bloom filters are keyed by monitored *line* (the
        // monitored bit lives in the L2 tags): arrival counters
        // colocated with a barrier's release flag feed the same
        // filter as the flag itself, which is how barriers show up
        // as many unique updates.
        if (is_update)
            blooms.filterFor(lineOf(addr)).observe(new_value);
        if (!is_update)
            return;
        ConditionCache::Entry *e = conds.find(addr, new_value, false);
        if (!e)
            return;
        unsigned unique = blooms.filterFor(lineOf(addr)).uniqueCount();
        sim::tracePrintf("AWGPred",
                         "addr=%llx val=%lld waiters=%u uniques=%u",
                         static_cast<unsigned long long>(addr),
                         static_cast<long long>(new_value),
                         e->numWaiters, unique);
        if (e->numWaiters > 1 &&
            unique > config.uniqueUpdateThreshold) {
            ++predictAll;
            resumeAll(*e);
        } else {
            ++predictOne;
            resumeOne(*e);
        }
        return;
      }
      case SyncMonMode::MinResume: {
        // Oracle: resume a waiter only when its condition holds right
        // now; one at a time, so resumed WGs never contend.
        conds.forEachOnAddr(addr, [&](ConditionCache::Entry &e) {
            if (store.read(e.addr, 8) == e.value)
                resumeOne(e);
        });
        return;
      }
    }
}

mem::WaitDecision
SyncMonController::onStallTimeout(int wg_id, mem::Addr addr,
                                  mem::MemValue expected)
{
    ++stallTimeouts;
    if (policyMode == SyncMonMode::Awg && scheduler &&
        scheduler->hasStarvedWork()) {
        // Stall-period misprediction while others are starved: yield
        // the resources. The waiter stays registered; the monitor or
        // the CP rescue brings it back.
        ++switchedOnTimeout;
        return {mem::WaitKind::Switch, config.rescueIntervalCycles};
    }

    // Otherwise the waiter resumes and retries (Mesa semantics, the
    // paper's "eventually the stalled WGs will time out and be
    // activated"). Drop its registration; a failing retry
    // re-registers.
    ConditionCache::Entry *e =
        conds.find(addr, expected, usesAddrOnlyConditions());
    if (e) {
        removeWaiter(*e, wg_id);
        maybeRetire(*e);
    }
    return {mem::WaitKind::Proceed, 0};
}

} // namespace ifp::syncmon
