/**
 * @file
 * Counting Bloom filters used by AWG's resume predictor.
 *
 * The paper provisions 512 filters, each with 24 cells and 6 hash
 * functions (~2.1% false-positive probability at their occupancy),
 * one filter per monitored address (selected by address hash). A
 * filter records the *unique* values written to its address; AWG
 * resumes all waiters when more than two unique updates have been
 * observed (barrier-like behaviour) and one waiter otherwise
 * (mutex-like behaviour).
 */

#ifndef IFP_SYNCMON_BLOOM_FILTER_HH
#define IFP_SYNCMON_BLOOM_FILTER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "syncmon/universal_hash.hh"

namespace ifp::syncmon {

/** One counting Bloom filter. */
class CountingBloomFilter
{
  public:
    CountingBloomFilter(unsigned num_cells = 24,
                        unsigned num_hashes = 6);

    /**
     * Record @p value; returns true when the value was (probably) not
     * seen before, and bumps the unique counter in that case.
     */
    bool observe(std::int64_t value);

    /** Membership test (may report false positives). */
    bool mayContain(std::int64_t value) const;

    /** Number of distinct values observed (modulo false positives). */
    unsigned uniqueCount() const { return uniques; }

    /** Clear all cells and the unique counter. */
    void reset();

    /** Bits of hardware state in this filter (budget accounting). */
    unsigned sizeBits() const { return cells.size(); }

  private:
    unsigned cellFor(std::int64_t value, unsigned hash_idx) const;

    std::vector<std::uint8_t> cells;
    unsigned hashes;
    unsigned uniques = 0;
};

/** The bank of per-address filters. */
class BloomFilterBank
{
  public:
    BloomFilterBank(unsigned num_filters = 512, unsigned cells = 24,
                    unsigned num_hashes = 6);

    /** The filter responsible for @p addr. */
    CountingBloomFilter &filterFor(std::uint64_t addr);
    const CountingBloomFilter &filterFor(std::uint64_t addr) const;

    void resetFor(std::uint64_t addr);

    unsigned numFilters() const { return filters.size(); }

    /** Total hardware bits across the bank. */
    std::uint64_t
    sizeBits() const
    {
        std::uint64_t bits = 0;
        for (const auto &f : filters)
            bits += f.sizeBits();
        return bits;
    }

  private:
    std::vector<CountingBloomFilter> filters;
    UniversalHash selector;
};

} // namespace ifp::syncmon

#endif // IFP_SYNCMON_BLOOM_FILTER_HH
