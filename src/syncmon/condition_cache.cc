#include "syncmon/condition_cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace ifp::syncmon {

WaitingWgList::WaitingWgList(unsigned capacity)
    : nodes(capacity)
{
    ifp_assert(capacity > 0, "waiting list needs capacity");
    for (unsigned i = 0; i + 1 < capacity; ++i)
        nodes[i].next = static_cast<int>(i + 1);
    nodes[capacity - 1].next = -1;
    freeHead = 0;
}

int
WaitingWgList::allocate(const Waiter &waiter)
{
    if (freeHead < 0)
        return -1;
    int idx = freeHead;
    freeHead = nodes[idx].next;
    nodes[idx].waiter = waiter;
    nodes[idx].next = -1;
    nodes[idx].allocated = true;
    ++used;
    maxUsed = std::max(maxUsed, used);
    return idx;
}

void
WaitingWgList::release(int index)
{
    ifp_assert(index >= 0 &&
               static_cast<std::size_t>(index) < nodes.size(),
               "bad waiting-list index %d", index);
    ifp_assert(nodes[index].allocated, "double free in waiting list");
    nodes[index].allocated = false;
    nodes[index].next = freeHead;
    freeHead = index;
    ifp_assert(used > 0, "waiting list underflow");
    --used;
}

Waiter &
WaitingWgList::node(int index)
{
    ifp_assert(index >= 0 &&
               static_cast<std::size_t>(index) < nodes.size() &&
               nodes[index].allocated,
               "bad waiting-list access %d", index);
    return nodes[index].waiter;
}

int
WaitingWgList::next(int index) const
{
    ifp_assert(index >= 0 &&
               static_cast<std::size_t>(index) < nodes.size(),
               "bad waiting-list index %d", index);
    return nodes[index].next;
}

void
WaitingWgList::setNext(int index, int next_index)
{
    ifp_assert(index >= 0 &&
               static_cast<std::size_t>(index) < nodes.size(),
               "bad waiting-list index %d", index);
    nodes[index].next = next_index;
}

ConditionCache::ConditionCache(unsigned num_sets, unsigned num_ways,
                               unsigned line_bytes)
    : sets(num_sets),
      ways(num_ways),
      log2Entries(std::bit_width(num_sets * num_ways) - 1),
      log2Line(std::bit_width(line_bytes) - 1),
      hasher(0x2545F4914F6CDD1DULL, 0x9E3779B9ULL),
      entries(num_sets * num_ways)
{
    ifp_assert((num_sets & (num_sets - 1)) == 0,
               "condition cache sets must be a power of two");
}

std::size_t
ConditionCache::setOf(mem::Addr addr, mem::MemValue value,
                      bool addr_only) const
{
    std::uint64_t key =
        addr_only ? (addr >> log2Line)
                  : conditionKey(addr, value, log2Entries, log2Line);
    return static_cast<std::size_t>(hasher(key) % sets);
}

ConditionCache::Entry *
ConditionCache::find(mem::Addr addr, mem::MemValue value, bool addr_only)
{
    std::size_t set = setOf(addr, value, addr_only);
    for (unsigned way = 0; way < ways; ++way) {
        Entry &e = entries[set * ways + way];
        if (!e.valid || e.addr != addr || e.addrOnly != addr_only)
            continue;
        if (addr_only || e.value == value)
            return &e;
    }
    return nullptr;
}

ConditionCache::Entry *
ConditionCache::insert(mem::Addr addr, mem::MemValue value,
                       bool addr_only, sim::Tick now)
{
    std::size_t set = setOf(addr, value, addr_only);
    for (unsigned way = 0; way < ways; ++way) {
        Entry &e = entries[set * ways + way];
        if (e.valid)
            continue;
        e.valid = true;
        e.addr = addr;
        e.value = value;
        e.addrOnly = addr_only;
        e.head = -1;
        e.tail = -1;
        e.numWaiters = 0;
        e.createdTick = now;
        addrIndex.emplace(addr, &e);
        ++validCount;
        maxValidCount = std::max(maxValidCount, validCount);
        return &e;
    }
    return nullptr;  // set conflict: caller spills to the Monitor Log
}

void
ConditionCache::remove(Entry *entry)
{
    ifp_assert(entry && entry->valid, "removing invalid condition");
    ifp_assert(entry->numWaiters == 0,
               "removing condition with %u waiters", entry->numWaiters);
    auto range = addrIndex.equal_range(entry->addr);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second == entry) {
            addrIndex.erase(it);
            break;
        }
    }
    entry->valid = false;
    ifp_assert(validCount > 0, "condition count underflow");
    --validCount;
}

ConditionCache::Entry *
ConditionCache::youngestInSet(mem::Addr addr, mem::MemValue value,
                              bool addr_only)
{
    std::size_t set = setOf(addr, value, addr_only);
    Entry *youngest = nullptr;
    for (unsigned way = 0; way < ways; ++way) {
        Entry &e = entries[set * ways + way];
        if (!e.valid)
            continue;
        if (!youngest || e.createdTick > youngest->createdTick)
            youngest = &e;
    }
    return youngest;
}

unsigned
ConditionCache::numConditionsOn(mem::Addr addr) const
{
    auto range = addrIndex.equal_range(addr);
    unsigned n = 0;
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second->valid)
            ++n;
    }
    return n;
}

std::uint64_t
ConditionCache::hardwareBits(unsigned waiting_list_capacity) const
{
    // Per entry: two pointers into the waiting-WG list; per list
    // node: a next pointer plus WG-id/valid state. With the default
    // geometry (1024 entries, 512-entry list, 9-bit pointers) this
    // reproduces the paper's budget:
    //   1024 x 18 + 512 x 15 = 26112 bits (3.18 KB).
    std::uint64_t ptr_bits = std::bit_width(waiting_list_capacity - 1);
    std::uint64_t entry_bits = 2 * ptr_bits;
    std::uint64_t list_node_bits = ptr_bits + 6;
    return capacity() * entry_bits +
           waiting_list_capacity * list_node_bits;
}

} // namespace ifp::syncmon
