/**
 * @file
 * Work-group: the unit of dispatch, synchronization and context
 * switching.
 *
 * A WG owns its wavefronts and LDS image, tracks its lifecycle state
 * (the paper's stalled / switching-out / waiting / ready / switching-in
 * states), its waiting condition, and the running-vs-waiting time
 * accounting behind Figure 11.
 */

#ifndef IFP_GPU_WORKGROUP_HH
#define IFP_GPU_WORKGROUP_HH

#include <array>
#include <memory>
#include <vector>

#include "gpu/wavefront.hh"
#include "isa/kernel.hh"
#include "mem/atomic_op.hh"
#include "sim/trace_sink.hh"
#include "sim/types.hh"

namespace ifp::gpu {

/** Lifecycle of a work-group. */
enum class WgState
{
    Pending,       //!< created, not yet dispatched
    Dispatching,   //!< reserved on a CU, launch latency elapsing
    Running,       //!< resident (wavefronts may individually wait)
    SwitchingOut,  //!< context save in flight
    SwappedOut,    //!< context in memory, waiting on a condition
    ReadySwapIn,   //!< context in memory, eligible to run
    SwitchingIn,   //!< context restore in flight
    Done,          //!< all wavefronts halted
};

/** Printable name of a WgState. */
const char *wgStateName(WgState state);

/** One work-group instance of a kernel launch. */
class WorkGroup
{
  public:
    /**
     * @p create_tick is when the WG's stall-reason clock starts:
     * launch time for the legacy single-kernel path (tick 0), the
     * arrival tick for kernels enqueued mid-run by the serving layer.
     *
     * @p abi_wg_id is the work-group index the kernel sees in rWgId:
     * the *context-local* index in [0, kernel.numWgs), while @p id is
     * globally unique across every concurrently-resident kernel.
     * Defaults to @p id (the legacy single-kernel case, where the two
     * coincide).
     */
    WorkGroup(int id, const isa::Kernel &kernel,
              sim::Tick create_tick = 0, int abi_wg_id = -1);

    /// @name Identity and placement
    /// @{
    int id;
    const isa::Kernel *kernel;
    int ctxId = 0;               //!< owning DispatchContext
    int cuId = -1;               //!< resident CU, -1 otherwise
    /// @}

    /**
     * Enter lifecycle state @p next at time @p now. The single entry
     * point for state changes, so the stall-reason clock below always
     * re-buckets on a transition. Entering Done closes the books.
     */
    void setState(WgState next, sim::Tick now);

    WgState state = WgState::Pending;

    /**
     * Bumped whenever a pending dispatch is invalidated (the host CU
     * went offline before the launch latency elapsed). The deferred
     * activation event captures the epoch at schedule time and fires
     * only if it still matches, so a re-queued WG is never activated
     * on the CU it was evicted from.
     */
    std::uint64_t dispatchEpoch = 0;

    std::vector<std::unique_ptr<Wavefront>> wavefronts;

    /// @name Intra-WG barrier
    /// @{
    unsigned barrierArrived = 0;
    /// @}

    /** LDS image (functional). */
    std::vector<std::uint8_t> lds;

    /// @name Waiting condition (for CP tracking / rescue / debug)
    /// @{
    bool hasWaitCond = false;
    mem::Addr waitAddr = 0;
    mem::MemValue waitExpected = 0;
    /** Set while a condition-met resume should follow a swap-out. */
    bool resumePending = false;
    /// @}

    /// @name Accounting (Figure 11 / Figure 15)
    /// @{
    sim::Tick dispatchTick = 0;
    sim::Tick completeTick = 0;
    sim::Tick waitingTicks = 0;   //!< accumulated sync-wait time
    sim::Tick waitStartTick = 0;
    unsigned waitingWfs = 0;      //!< WFs currently in a waiting state
    unsigned contextSaves = 0;
    unsigned contextRestores = 0;
    /// @}

    /// @name Stall-reason accounting (observability layer)
    ///
    /// Every tick from WG creation to completion (or end of run) is
    /// attributed to exactly one StallReason bucket, so the buckets
    /// partition the WG's lifetime: sum(reasonTicks) == lifetime.
    /// While Running, the bucket is refined from wavefront-level
    /// counters (sync waiters > sleepers > all-blocked-on-memory).
    /// @{
    std::array<sim::Tick, sim::numStallReasons> reasonTicks{};
    unsigned sleepingWfs = 0;     //!< subset of waitingWfs in s_sleep
    unsigned memWaitWfs = 0;      //!< WFs blocked on a memory response

    /** Re-derive the Running sub-bucket after a WF counter changed. */
    void refreshRunBucket(sim::Tick now);

    /** Stop the stall clock (at completion or end of simulation). */
    void closeAccounting(sim::Tick now);

    /** True once closeAccounting() ran. */
    bool accountingClosed() const { return booksClosed; }

    /** Lifetime covered by the buckets so far (creation to close). */
    sim::Tick accountedTicks() const;
    /// @}

    unsigned doneWfs = 0;

    /** All wavefronts have halted. */
    bool complete() const { return doneWfs == wavefronts.size(); }

    /** LDS loads/stores (functional, 8-byte). */
    std::int64_t ldsRead(std::uint64_t offset) const;
    void ldsWrite(std::uint64_t offset, std::int64_t value);

    /**
     * A wavefront entered a sync-waiting state (WaitSync / Sleeping /
     * swapped out). Starts the waiting clock on the 0 -> 1 transition.
     * @p spin marks an s_sleep backoff spin (Spin bucket) as opposed
     * to a hardware-held sync wait (Waiting bucket).
     */
    void beginWait(sim::Tick now, bool spin = false);

    /** A waiting wavefront resumed; stops the clock on 1 -> 0. */
    void endWait(sim::Tick now, bool spin = false);

    /** Total resident+swapped lifetime, dispatch to completion. */
    sim::Tick
    execTicks() const
    {
        return completeTick > dispatchTick ? completeTick - dispatchTick
                                           : 0;
    }

  private:
    /** Accumulate into the open bucket and switch to @p next. */
    void switchBucket(sim::StallReason next, sim::Tick now);

    /** The Running-state sub-bucket implied by current WF counters. */
    sim::StallReason runBucketNow() const;

    sim::StallReason bucket = sim::StallReason::DispatchQueue;
    sim::Tick bucketSince = 0;    //!< clock starts at the create tick
    bool booksClosed = false;
};

} // namespace ifp::gpu

#endif // IFP_GPU_WORKGROUP_HH
