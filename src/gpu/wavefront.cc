#include "gpu/wavefront.hh"

#include "gpu/workgroup.hh"
#include "isa/builder.hh"
#include "sim/logging.hh"

namespace ifp::gpu {

Wavefront::Wavefront(WorkGroup *parent, unsigned id)
    : wg(parent), idInWg(id)
{
}

void
Wavefront::initRegs(const isa::Kernel &kernel, int wg_id)
{
    regs.fill(0);
    regs[isa::rZero] = 0;
    regs[isa::rWgId] = wg_id;
    regs[isa::rWfId] = idInWg;
    regs[isa::rNumWgs] = kernel.numWgs;
    regs[isa::rWfPerWg] = kernel.wavefrontsPerWg();
    ifp_assert(kernel.args.size() <= isa::numRegs - isa::rArg0,
               "too many kernel arguments (%zu)", kernel.args.size());
    for (std::size_t i = 0; i < kernel.args.size(); ++i)
        regs[isa::rArg0 + i] = kernel.args[i];
}

} // namespace ifp::gpu
