/**
 * @file
 * Wavefront state: registers, program counter and scheduling status.
 *
 * Execution semantics live in ComputeUnit::executeInstr; the Wavefront
 * is a passive state container plus the small state machine that the
 * CU, the memory system callbacks and the resume paths drive.
 */

#ifndef IFP_GPU_WAVEFRONT_HH
#define IFP_GPU_WAVEFRONT_HH

#include <array>
#include <cstdint>

#include "isa/kernel.hh"
#include "sim/types.hh"

namespace ifp::gpu {

class WorkGroup;

/** Scheduling status of one wavefront. */
enum class WfState
{
    Ready,        //!< can issue an instruction
    Busy,         //!< occupying its SIMD (valu / LDS)
    Sleeping,     //!< executing s_sleep
    WaitMem,      //!< memory request outstanding
    WaitBarrier,  //!< arrived at a WG barrier
    WaitSync,     //!< waiting on a synchronization condition
    Done,         //!< executed halt
};

/** One wavefront of a work-group. */
class Wavefront
{
  public:
    Wavefront(WorkGroup *parent, unsigned id_in_wg);

    /// @name Identity
    /// @{
    WorkGroup *wg;
    unsigned idInWg;
    unsigned simdSlot = 0;   //!< SIMD index within the CU when resident
    /// @}

    /// @name Architectural state
    /// @{
    std::array<std::int64_t, isa::numRegs> regs{};
    std::size_t pc = 0;
    /// @}

    /// @name Scheduling state
    /// @{
    WfState state = WfState::Ready;
    /**
     * Bumped on every transition out of a waiting state; wake/rescue
     * events capture the epoch and become no-ops when stale.
     */
    std::uint64_t waitEpoch = 0;
    /// @}

    /// @name Statistics
    /// @{
    std::uint64_t instructionsExecuted = 0;
    std::uint64_t atomicsExecuted = 0;
    /// @}

    /** Initialize registers per the launch ABI. */
    void initRegs(const isa::Kernel &kernel, int wg_id);

    /** Read a register. */
    std::int64_t
    reg(isa::Reg r) const
    {
        return regs[r];
    }

    /** Write a register. */
    void
    setReg(isa::Reg r, std::int64_t value)
    {
        regs[r] = value;
    }
};

} // namespace ifp::gpu

#endif // IFP_GPU_WAVEFRONT_HH
