/**
 * @file
 * Work-group dispatcher: WG ids, placement, completion tracking and
 * the resume paths of the paper's cooperative scheduling — for a set
 * of concurrently-resident kernels.
 *
 * The dispatcher owns one DispatchContext per enqueued kernel. WG ids
 * are globally unique and dense across contexts; each context keeps
 * its own fresh/swap-in queues and stat shadows. CU ownership is an
 * explicit map (`cuOwner`): the AdmissionPolicy (the CP's admission
 * scheduler) carves the CUs between resident contexts, and findHost()
 * only considers CUs the WG's context owns. Revoking a CU from a
 * context pre-empts its Running/Dispatching WGs through exactly the
 * drain/context-save machinery the §VI offline-CU scenario uses —
 * multi-tenant CU churn is the organic form of that fault.
 *
 * Fresh WGs dispatch in id order as resources permit. When a
 * waiting-policy controller asks a WG to yield (Switch decision) the
 * dispatcher orchestrates the drain / context-save / resource-free
 * sequence with the CU and the Command Processor; resumes go the
 * other way.
 *
 * `swapInCapable` distinguishes the paper's Baseline from everything
 * else: current GPUs can pre-empt WGs (kernel-level scheduling) but
 * have no firmware to context switch an individual WG back *in* — that
 * capability is exactly what the paper adds via the CP. With it off,
 * swapped-out WGs are stranded and oversubscribed runs deadlock.
 */

#ifndef IFP_GPU_DISPATCHER_HH
#define IFP_GPU_DISPATCHER_HH

#include <memory>
#include <vector>

#include "gpu/compute_unit.hh"
#include "gpu/dispatch_context.hh"
#include "gpu/sched_iface.hh"
#include "gpu/workgroup.hh"
#include "sim/clocked.hh"
#include "sim/sched_oracle.hh"
#include "sim/stats.hh"

namespace ifp::gpu {

/** The global WG dispatcher. */
class Dispatcher : public sim::Clocked,
                   public WgScheduler,
                   public CuListener
{
  public:
    Dispatcher(std::string name, sim::EventQueue &eq,
               const GpuConfig &cfg);

    /// @name Wiring
    /// @{
    void setCus(std::vector<ComputeUnit *> cu_list);
    void setContextSwitcher(ContextSwitcher *cs) { switcher = cs; }
    void setSwapInCapable(bool capable) { swapInCapable = capable; }
    void setTraceSink(sim::TraceSink *sink) { trace = sink; }

    /**
     * Schedule-choice oracle (sim/sched_oracle.hh) consulted for the
     * dispatch pick and CU placement. Null (the default) keeps the
     * stock deterministic order without building candidate lists.
     */
    void setSchedOracle(sim::SchedOracle *o) { oracle = o; }

    /**
     * Backstop rescue interval armed at the CP for any WG that ends
     * up switched out while waiting (in particular WGs pre-empted by
     * kernel-level scheduling, which never pass through a waiting-
     * policy decision).
     */
    void setDefaultRescueCycles(sim::Cycles cycles)
    {
        defaultRescueCycles = cycles;
    }

    /** Global lifecycle hooks (GpuSystem's run loop). */
    void setKernelListener(KernelListener *l) { listener = l; }

    /** The admission/preemption scheduler (the CP's). */
    void setAdmissionPolicy(AdmissionPolicy *p) { admission = p; }
    /// @}

    /// @name Context lifecycle
    /// @{

    /**
     * Create the context and all its WGs (ids continue the global
     * dense range) without making it schedulable. @p enqueue_tick is
     * its arrival time — contextArrived() must fire at that tick.
     * @return the new context id.
     */
    int createContext(const isa::Kernel &kernel,
                      const LaunchOptions &opts,
                      sim::Tick enqueue_tick);

    /**
     * The context's arrival time came: enter the admission queue and
     * notify the AdmissionPolicy (which may admit it synchronously).
     */
    void contextArrived(int ctx_id);

    /**
     * Admission decision: make the context resident. WGs dispatch as
     * soon as the admission policy grants CUs via setCuAssignment().
     */
    void admitContext(int ctx_id);

    /**
     * Install a new CU-ownership map (`owner[cu]` = ctx id, -1 =
     * unowned). Revoked CUs pre-empt their Running/Dispatching WGs;
     * granted CUs pick up pending work immediately. Offline CUs keep
     * their owner (nothing can run there anyway).
     */
    void setCuAssignment(const std::vector<int> &owner);

    const std::vector<int> &cuAssignment() const { return cuOwner; }

    /**
     * Legacy single-kernel entry: create, arrive and admit one
     * context at the current tick. Without an AdmissionPolicy the
     * dispatcher self-admits and takes every CU (standalone use in
     * unit tests); with one installed the policy decides, exactly as
     * enqueueKernel does.
     */
    void launch(const isa::Kernel &kernel);
    /// @}

    bool kernelComplete() const
    {
        return !wgs.empty() && completed == wgs.size();
    }

    /** Every created context reached Complete (and one exists). */
    bool allContextsComplete() const
    {
        return !contexts.empty() &&
               completedContexts == contexts.size();
    }

    /// @name WgScheduler (used by waiting-policy controllers)
    /// @{
    bool hasStarvedWork() const override;
    void resumeWg(int wg_id) override;
    unsigned numWaitingWgs() const override;
    /// @}

    /// @name CuListener
    /// @{
    void wgCompleted(WorkGroup *wg) override;
    void wgWantsSwitch(WorkGroup *wg, sim::Cycles rescue_cycles)
        override;
    /// @}

    /**
     * Oversubscription scenario: take @p cu_id offline and pre-empt
     * its resident WGs (kernel-level scheduling taking resources away).
     */
    void offlineCu(unsigned cu_id);

    /**
     * Resource restoration: the higher-priority work finished and the
     * CU is schedulable again (Figure 2's dynamic allocation).
     * Stranded ready WGs dispatch onto it immediately — if the
     * machine has WG swap-in firmware.
     */
    void onlineCu(unsigned cu_id);

    /** Number of CUs currently online. */
    unsigned numOnlineCus() const;

    /** Whether CU @p cu_id is online. */
    bool cuOnline(unsigned cu_id) const
    {
        return cu_id < cus.size() && !cus[cu_id]->offline();
    }

    /**
     * Whether any work-group of context @p ctx_id currently occupies
     * CU @p cu_id (dispatching, running or draining there).
     */
    bool cuHostsContext(unsigned cu_id, int ctx_id) const;

    unsigned numCus() const
    {
        return static_cast<unsigned>(cus.size());
    }

    /**
     * Per-fault recovery accounting: one record per CU restoration
     * that was followed by a swap-in, measuring how long the machine
     * took to make use of the returned resources.
     */
    struct CuRecovery
    {
        sim::Tick restoreTick;      //!< when onlineCu() fired
        sim::Tick firstSwapInTick;  //!< first swap-in after it
    };

    const std::vector<CuRecovery> &cuRecoveries() const
    {
        return recoveries;
    }

    /// @name Introspection
    /// @{
    WorkGroup *wg(int wg_id);
    const std::vector<std::unique_ptr<WorkGroup>> &workgroups() const
    {
        return wgs;
    }
    unsigned numCompleted() const { return completed; }

    DispatchContext *context(int ctx_id);
    const DispatchContext *context(int ctx_id) const;
    const std::vector<std::unique_ptr<DispatchContext>> &
    dispatchContexts() const
    {
        return contexts;
    }
    /// @}

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

    /**
     * Close every WG's stall-reason books at @p end_tick and fold the
     * per-WG tick totals into the wgCycles stat vector (indexed by
     * StallReason, in cycles). Called once by GpuSystem at the end of
     * a run; the buckets then partition each WG's lifetime exactly.
     */
    void accumulateWgCycleStats(sim::Tick end_tick);

  private:
    void tryDispatch();
    /** tryDispatch() with an oracle: explicit candidate enumeration. */
    void oracleDispatch();
    ComputeUnit *findHost(const DispatchContext &ctx,
                          bool consult_oracle = true);
    void startFresh(WorkGroup *wg, ComputeUnit *cu);
    void startSwapIn(WorkGroup *wg, ComputeUnit *cu);
    void preemptRunning(WorkGroup *wg);
    void beginSwapOut(WorkGroup *wg);
    void finishSwapOut(WorkGroup *wg);

    /**
     * Pre-empt @p w while it is still inside the launch latency: the
     * epoch guard cancels the pending activation and the WG returns
     * to the front of its context's fresh queue (it never ran, so
     * there is no context to save). @return the requeued WG id.
     */
    int requeueDispatching(WorkGroup *w, unsigned cu_id);

    /** The context owning @p w (by its ctxId). */
    DispatchContext &ctxOf(const WorkGroup *w);

    void notifyPreempted(WorkGroup *w, int cu_id);
    void contextCompleted(DispatchContext &ctx);

    const GpuConfig &config;
    std::vector<ComputeUnit *> cus;
    ContextSwitcher *switcher = nullptr;
    sim::TraceSink *trace = nullptr;
    sim::SchedOracle *oracle = nullptr;
    KernelListener *listener = nullptr;
    AdmissionPolicy *admission = nullptr;
    bool swapInCapable = true;
    sim::Cycles defaultRescueCycles = 0;

    std::vector<std::unique_ptr<DispatchContext>> contexts;
    /** Resident contexts in admission order (tryDispatch priority). */
    std::vector<int> residentOrder;
    /** CU ownership: ctx id per CU, -1 = unowned. */
    std::vector<int> cuOwner;
    unsigned completedContexts = 0;

    std::vector<std::unique_ptr<WorkGroup>> wgs;
    unsigned completed = 0;

    /** Restorations whose first swap-in has not happened yet. */
    std::vector<sim::Tick> pendingRestores;
    std::vector<CuRecovery> recoveries;

    sim::StatGroup statGroup;
    sim::Scalar &dispatches;
    sim::Scalar &swapOuts;
    sim::Scalar &swapIns;
    sim::Scalar &resumesStalled;
    sim::Scalar &resumesSwapped;
    sim::Scalar &forcedPreemptions;
    sim::Scalar &contextsAdmitted;
    sim::Scalar &cuReassignments;
    sim::Vector &wgCycles;
};

} // namespace ifp::gpu

#endif // IFP_GPU_DISPATCHER_HH
