/**
 * @file
 * Work-group dispatcher: WG ids, placement, completion tracking and
 * the resume paths of the paper's cooperative scheduling.
 *
 * The dispatcher owns all WG instances of a kernel launch. Fresh WGs
 * dispatch in id order as resources permit. When a waiting-policy
 * controller asks a WG to yield (Switch decision) the dispatcher
 * orchestrates the drain / context-save / resource-free sequence with
 * the CU and the Command Processor; resumes go the other way.
 *
 * `swapInCapable` distinguishes the paper's Baseline from everything
 * else: current GPUs can pre-empt WGs (kernel-level scheduling) but
 * have no firmware to context switch an individual WG back *in* — that
 * capability is exactly what the paper adds via the CP. With it off,
 * swapped-out WGs are stranded and oversubscribed runs deadlock.
 */

#ifndef IFP_GPU_DISPATCHER_HH
#define IFP_GPU_DISPATCHER_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/compute_unit.hh"
#include "gpu/sched_iface.hh"
#include "gpu/workgroup.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"

namespace ifp::gpu {

/** The global WG dispatcher. */
class Dispatcher : public sim::Clocked,
                   public WgScheduler,
                   public CuListener
{
  public:
    Dispatcher(std::string name, sim::EventQueue &eq,
               const GpuConfig &cfg);

    /// @name Wiring
    /// @{
    void setCus(std::vector<ComputeUnit *> cu_list);
    void setContextSwitcher(ContextSwitcher *cs) { switcher = cs; }
    void setSwapInCapable(bool capable) { swapInCapable = capable; }
    void setTraceSink(sim::TraceSink *sink) { trace = sink; }

    /**
     * Backstop rescue interval armed at the CP for any WG that ends
     * up switched out while waiting (in particular WGs pre-empted by
     * kernel-level scheduling, which never pass through a waiting-
     * policy decision).
     */
    void setDefaultRescueCycles(sim::Cycles cycles)
    {
        defaultRescueCycles = cycles;
    }
    void setOnComplete(std::function<void()> fn)
    {
        onComplete = std::move(fn);
    }
    /// @}

    /** Create all WGs of @p kernel and start dispatching. */
    void launch(const isa::Kernel &kernel);

    bool kernelComplete() const
    {
        return !wgs.empty() && completed == wgs.size();
    }

    /// @name WgScheduler (used by waiting-policy controllers)
    /// @{
    bool hasStarvedWork() const override;
    void resumeWg(int wg_id) override;
    unsigned numWaitingWgs() const override;
    /// @}

    /// @name CuListener
    /// @{
    void wgCompleted(WorkGroup *wg) override;
    void wgWantsSwitch(WorkGroup *wg, sim::Cycles rescue_cycles)
        override;
    /// @}

    /**
     * Oversubscription scenario: take @p cu_id offline and pre-empt
     * its resident WGs (kernel-level scheduling taking resources away).
     */
    void offlineCu(unsigned cu_id);

    /**
     * Resource restoration: the higher-priority work finished and the
     * CU is schedulable again (Figure 2's dynamic allocation).
     * Stranded ready WGs dispatch onto it immediately — if the
     * machine has WG swap-in firmware.
     */
    void onlineCu(unsigned cu_id);

    /**
     * Per-fault recovery accounting: one record per CU restoration
     * that was followed by a swap-in, measuring how long the machine
     * took to make use of the returned resources.
     */
    struct CuRecovery
    {
        sim::Tick restoreTick;      //!< when onlineCu() fired
        sim::Tick firstSwapInTick;  //!< first swap-in after it
    };

    const std::vector<CuRecovery> &cuRecoveries() const
    {
        return recoveries;
    }

    /// @name Introspection
    /// @{
    WorkGroup *wg(int wg_id);
    const std::vector<std::unique_ptr<WorkGroup>> &workgroups() const
    {
        return wgs;
    }
    unsigned numCompleted() const { return completed; }
    /// @}

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

    /**
     * Close every WG's stall-reason books at @p end_tick and fold the
     * per-WG tick totals into the wgCycles stat vector (indexed by
     * StallReason, in cycles). Called once by GpuSystem at the end of
     * a run; the buckets then partition each WG's lifetime exactly.
     */
    void accumulateWgCycleStats(sim::Tick end_tick);

  private:
    void tryDispatch();
    ComputeUnit *findHost(const isa::Kernel &kernel);
    void startFresh(WorkGroup *wg, ComputeUnit *cu);
    void startSwapIn(WorkGroup *wg, ComputeUnit *cu);
    void preemptRunning(WorkGroup *wg);
    void beginSwapOut(WorkGroup *wg);
    void finishSwapOut(WorkGroup *wg);

    const GpuConfig &config;
    std::vector<ComputeUnit *> cus;
    ContextSwitcher *switcher = nullptr;
    sim::TraceSink *trace = nullptr;
    bool swapInCapable = true;
    sim::Cycles defaultRescueCycles = 0;
    std::function<void()> onComplete;

    const isa::Kernel *kernel = nullptr;
    std::vector<std::unique_ptr<WorkGroup>> wgs;
    std::deque<int> pendingFresh;
    std::deque<int> readySwapIn;
    unsigned completed = 0;

    /** Restorations whose first swap-in has not happened yet. */
    std::vector<sim::Tick> pendingRestores;
    std::vector<CuRecovery> recoveries;

    sim::StatGroup statGroup;
    sim::Scalar &dispatches;
    sim::Scalar &swapOuts;
    sim::Scalar &swapIns;
    sim::Scalar &resumesStalled;
    sim::Scalar &resumesSwapped;
    sim::Scalar &forcedPreemptions;
    sim::Vector &wgCycles;
};

} // namespace ifp::gpu

#endif // IFP_GPU_DISPATCHER_HH
