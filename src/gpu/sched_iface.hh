/**
 * @file
 * Narrow interfaces that decouple the GPU core from the Command
 * Processor and the waiting-policy controllers.
 */

#ifndef IFP_GPU_SCHED_IFACE_HH
#define IFP_GPU_SCHED_IFACE_HH

#include <functional>

#include "sim/types.hh"

namespace ifp::gpu {

class WorkGroup;

/**
 * View of the WG scheduler exposed to waiting-policy controllers
 * (SyncMon, Timeout) and the Command Processor.
 */
class WgScheduler
{
  public:
    virtual ~WgScheduler() = default;

    /**
     * True when WGs exist that could use the resources a waiting WG
     * would free: not-yet-dispatched WGs or swapped-out ready WGs.
     * This is the paper's oversubscription test — WGs only context
     * switch out when someone else can run.
     */
    virtual bool hasStarvedWork() const = 0;

    /**
     * A waiting WG's condition was (or may have been) met: wake it.
     * Stalled WGs resume in place; swapped-out WGs are queued for
     * context switch-in. Mesa semantics: the WG re-checks its
     * condition after resuming.
     */
    virtual void resumeWg(int wg_id) = 0;

    /** Number of WGs currently waiting (stalled or switched out). */
    virtual unsigned numWaitingWgs() const = 0;
};

/**
 * Context-switch services the dispatcher obtains from the Command
 * Processor.
 */
class ContextSwitcher
{
  public:
    virtual ~ContextSwitcher() = default;

    /** Stream @p wg's context out to memory; @p done fires after. */
    virtual void saveContext(WorkGroup *wg,
                             std::function<void()> done) = 0;

    /** Stream @p wg's context back in; @p done fires after. */
    virtual void restoreContext(WorkGroup *wg,
                                std::function<void()> done) = 0;

    /** Arm the CP rescue timer for a swapped-out waiting WG. */
    virtual void armRescue(int wg_id, sim::Cycles timeout_cycles) = 0;

    /** Cancel a previously armed rescue (the WG resumed). */
    virtual void cancelRescue(int wg_id) = 0;
};

} // namespace ifp::gpu

#endif // IFP_GPU_SCHED_IFACE_HH
