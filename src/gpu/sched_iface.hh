/**
 * @file
 * Narrow interfaces that decouple the GPU core from the Command
 * Processor, the waiting-policy controllers and the multi-kernel
 * serving layer.
 */

#ifndef IFP_GPU_SCHED_IFACE_HH
#define IFP_GPU_SCHED_IFACE_HH

#include <functional>

#include "sim/types.hh"

namespace ifp::gpu {

class WorkGroup;
class DispatchContext;

/**
 * View of the WG scheduler exposed to waiting-policy controllers
 * (SyncMon, Timeout) and the Command Processor.
 */
class WgScheduler
{
  public:
    virtual ~WgScheduler() = default;

    /**
     * True when WGs exist that could use the resources a waiting WG
     * would free: not-yet-dispatched WGs or swapped-out ready WGs.
     * This is the paper's oversubscription test — WGs only context
     * switch out when someone else can run.
     */
    virtual bool hasStarvedWork() const = 0;

    /**
     * A waiting WG's condition was (or may have been) met: wake it.
     * Stalled WGs resume in place; swapped-out WGs are queued for
     * context switch-in. Mesa semantics: the WG re-checks its
     * condition after resuming.
     */
    virtual void resumeWg(int wg_id) = 0;

    /** Number of WGs currently waiting (stalled or switched out). */
    virtual unsigned numWaitingWgs() const = 0;
};

/**
 * Context-switch services the dispatcher obtains from the Command
 * Processor.
 */
class ContextSwitcher
{
  public:
    virtual ~ContextSwitcher() = default;

    /** Stream @p wg's context out to memory; @p done fires after. */
    virtual void saveContext(WorkGroup *wg,
                             std::function<void()> done) = 0;

    /** Stream @p wg's context back in; @p done fires after. */
    virtual void restoreContext(WorkGroup *wg,
                                std::function<void()> done) = 0;

    /** Arm the CP rescue timer for a swapped-out waiting WG. */
    virtual void armRescue(int wg_id, sim::Cycles timeout_cycles) = 0;

    /** Cancel a previously armed rescue (the WG resumed). */
    virtual void cancelRescue(int wg_id) = 0;
};

/** Events a CU reports to the dispatcher. */
class CuListener
{
  public:
    virtual ~CuListener() = default;

    /** All wavefronts of @p wg executed halt. */
    virtual void wgCompleted(WorkGroup *wg) = 0;

    /**
     * The waiting policy asked @p wg to yield its resources.
     * @p rescue_cycles is the backstop timeout to arm at the CP.
     */
    virtual void wgWantsSwitch(WorkGroup *wg,
                               sim::Cycles rescue_cycles) = 0;
};

/**
 * Typed per-kernel lifecycle hooks. The dispatcher pushes these both
 * to a global listener (GpuSystem's run loop) and to the per-context
 * listener from LaunchOptions, so serving-layer statistics are
 * event-driven — nothing polls dispatcher state. This replaces the
 * old untyped Dispatcher::setOnComplete(std::function) completion
 * back-channel.
 */
class KernelListener
{
  public:
    virtual ~KernelListener() = default;

    /** The context entered the admission queue (arrival time). */
    virtual void kernelEnqueued(const DispatchContext &) {}

    /** The admission scheduler made the context resident. */
    virtual void kernelAdmitted(const DispatchContext &) {}

    /**
     * One of the context's WGs was forcibly pre-empted (CU lost to a
     * higher-priority kernel or to a fault).
     */
    virtual void kernelPreempted(const DispatchContext &, int wg_id,
                                 int cu_id)
    {
        (void)wg_id;
        (void)cu_id;
    }

    /** A previously pre-empted/swapped WG was swapped back in. */
    virtual void kernelResumed(const DispatchContext &, int wg_id,
                               int cu_id)
    {
        (void)wg_id;
        (void)cu_id;
    }

    /** Every WG of the context completed. */
    virtual void kernelCompleted(const DispatchContext &) {}
};

/**
 * The admission/preemption policy the dispatcher notifies about
 * context and CU availability changes. Implemented by the Command
 * Processor's AdmissionScheduler (cp/admission.hh); every hook runs
 * synchronously inside the notifying call, so admission decisions
 * never schedule events of their own and runs stay deterministic.
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    /** @p ctx_id arrived (entered the Queued state). */
    virtual void contextEnqueued(int ctx_id) = 0;

    /** @p ctx_id completed; its CUs are reclaimable. */
    virtual void contextCompleted(int ctx_id) = 0;

    /** A CU went offline or came back (fault/churn). */
    virtual void cuAvailabilityChanged() = 0;
};

} // namespace ifp::gpu

#endif // IFP_GPU_SCHED_IFACE_HH
