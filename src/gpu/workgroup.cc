#include "gpu/workgroup.hh"

#include "sim/logging.hh"

namespace ifp::gpu {

const char *
wgStateName(WgState state)
{
    switch (state) {
      case WgState::Pending: return "pending";
      case WgState::Dispatching: return "dispatching";
      case WgState::Running: return "running";
      case WgState::SwitchingOut: return "switching-out";
      case WgState::SwappedOut: return "swapped-out";
      case WgState::ReadySwapIn: return "ready-swap-in";
      case WgState::SwitchingIn: return "switching-in";
      case WgState::Done: return "done";
    }
    return "?";
}

WorkGroup::WorkGroup(int wg_id, const isa::Kernel &k,
                     sim::Tick create_tick, int abi_wg_id)
    : id(wg_id), kernel(&k), lds(k.ldsBytes, 0),
      bucketSince(create_tick)
{
    if (abi_wg_id < 0)
        abi_wg_id = wg_id;
    unsigned num_wfs = k.wavefrontsPerWg();
    wavefronts.reserve(num_wfs);
    for (unsigned i = 0; i < num_wfs; ++i) {
        wavefronts.push_back(std::make_unique<Wavefront>(this, i));
        wavefronts.back()->initRegs(k, abi_wg_id);
    }
}

std::int64_t
WorkGroup::ldsRead(std::uint64_t offset) const
{
    ifp_assert(offset + 8 <= lds.size(),
               "wg%d LDS read out of bounds (%llu/%zu)", id,
               static_cast<unsigned long long>(offset), lds.size());
    std::uint64_t raw = 0;
    for (unsigned i = 0; i < 8; ++i)
        raw |= static_cast<std::uint64_t>(lds[offset + i]) << (8 * i);
    return static_cast<std::int64_t>(raw);
}

void
WorkGroup::ldsWrite(std::uint64_t offset, std::int64_t value)
{
    ifp_assert(offset + 8 <= lds.size(),
               "wg%d LDS write out of bounds (%llu/%zu)", id,
               static_cast<unsigned long long>(offset), lds.size());
    auto raw = static_cast<std::uint64_t>(value);
    for (unsigned i = 0; i < 8; ++i)
        lds[offset + i] = static_cast<std::uint8_t>(raw >> (8 * i));
}

void
WorkGroup::beginWait(sim::Tick now, bool spin)
{
    if (waitingWfs == 0)
        waitStartTick = now;
    ++waitingWfs;
    if (spin)
        ++sleepingWfs;
    refreshRunBucket(now);
}

void
WorkGroup::endWait(sim::Tick now, bool spin)
{
    ifp_assert(waitingWfs > 0, "wg%d endWait underflow", id);
    --waitingWfs;
    if (spin) {
        ifp_assert(sleepingWfs > 0, "wg%d sleeping underflow", id);
        --sleepingWfs;
    }
    if (waitingWfs == 0)
        waitingTicks += now - waitStartTick;
    refreshRunBucket(now);
}

namespace {

// Bucket a non-Running lifecycle state falls into. Running is refined
// separately from wavefront counters; Done closes the books.
sim::StallReason
bucketForState(WgState s)
{
    switch (s) {
      case WgState::Pending:
      case WgState::Dispatching:
      case WgState::ReadySwapIn:
        return sim::StallReason::DispatchQueue;
      case WgState::SwitchingOut:
      case WgState::SwitchingIn:
        return sim::StallReason::SaveRestore;
      case WgState::SwappedOut:
        return sim::StallReason::Waiting;
      case WgState::Running:
      case WgState::Done:
        break;
    }
    return sim::StallReason::Running;
}

} // anonymous namespace

void
WorkGroup::setState(WgState next, sim::Tick now)
{
    state = next;
    if (next == WgState::Done) {
        closeAccounting(now);
    } else if (next == WgState::Running) {
        switchBucket(runBucketNow(), now);
    } else {
        switchBucket(bucketForState(next), now);
    }
}

sim::StallReason
WorkGroup::runBucketNow() const
{
    // Sync waiters dominate sleepers dominate memory: a WG with one WF
    // held on a condition is waiting no matter what the others do.
    if (waitingWfs > sleepingWfs)
        return sim::StallReason::Waiting;
    if (sleepingWfs > 0)
        return sim::StallReason::Spin;
    unsigned live = static_cast<unsigned>(wavefronts.size()) - doneWfs;
    if (memWaitWfs > 0 && memWaitWfs + barrierArrived >= live)
        return sim::StallReason::Memory;
    return sim::StallReason::Running;
}

void
WorkGroup::refreshRunBucket(sim::Tick now)
{
    if (booksClosed || state != WgState::Running)
        return;
    switchBucket(runBucketNow(), now);
}

void
WorkGroup::switchBucket(sim::StallReason next, sim::Tick now)
{
    if (booksClosed || next == bucket)
        return;
    reasonTicks[sim::stallIndex(bucket)] += now - bucketSince;
    bucket = next;
    bucketSince = now;
}

void
WorkGroup::closeAccounting(sim::Tick now)
{
    if (booksClosed)
        return;
    reasonTicks[sim::stallIndex(bucket)] += now - bucketSince;
    bucketSince = now;
    booksClosed = true;
}

sim::Tick
WorkGroup::accountedTicks() const
{
    sim::Tick sum = 0;
    for (sim::Tick t : reasonTicks)
        sum += t;
    return sum;
}

} // namespace ifp::gpu
