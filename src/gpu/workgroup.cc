#include "gpu/workgroup.hh"

#include "sim/logging.hh"

namespace ifp::gpu {

const char *
wgStateName(WgState state)
{
    switch (state) {
      case WgState::Pending: return "pending";
      case WgState::Dispatching: return "dispatching";
      case WgState::Running: return "running";
      case WgState::SwitchingOut: return "switching-out";
      case WgState::SwappedOut: return "swapped-out";
      case WgState::ReadySwapIn: return "ready-swap-in";
      case WgState::SwitchingIn: return "switching-in";
      case WgState::Done: return "done";
    }
    return "?";
}

WorkGroup::WorkGroup(int wg_id, const isa::Kernel &k)
    : id(wg_id), kernel(&k), lds(k.ldsBytes, 0)
{
    unsigned num_wfs = k.wavefrontsPerWg();
    wavefronts.reserve(num_wfs);
    for (unsigned i = 0; i < num_wfs; ++i) {
        wavefronts.push_back(std::make_unique<Wavefront>(this, i));
        wavefronts.back()->initRegs(k, wg_id);
    }
}

std::int64_t
WorkGroup::ldsRead(std::uint64_t offset) const
{
    ifp_assert(offset + 8 <= lds.size(),
               "wg%d LDS read out of bounds (%llu/%zu)", id,
               static_cast<unsigned long long>(offset), lds.size());
    std::uint64_t raw = 0;
    for (unsigned i = 0; i < 8; ++i)
        raw |= static_cast<std::uint64_t>(lds[offset + i]) << (8 * i);
    return static_cast<std::int64_t>(raw);
}

void
WorkGroup::ldsWrite(std::uint64_t offset, std::int64_t value)
{
    ifp_assert(offset + 8 <= lds.size(),
               "wg%d LDS write out of bounds (%llu/%zu)", id,
               static_cast<unsigned long long>(offset), lds.size());
    auto raw = static_cast<std::uint64_t>(value);
    for (unsigned i = 0; i < 8; ++i)
        lds[offset + i] = static_cast<std::uint8_t>(raw >> (8 * i));
}

void
WorkGroup::beginWait(sim::Tick now)
{
    if (waitingWfs == 0)
        waitStartTick = now;
    ++waitingWfs;
}

void
WorkGroup::endWait(sim::Tick now)
{
    ifp_assert(waitingWfs > 0, "wg%d endWait underflow", id);
    --waitingWfs;
    if (waitingWfs == 0)
        waitingTicks += now - waitStartTick;
}

} // namespace ifp::gpu
