#include "gpu/compute_unit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::gpu {

ComputeUnit::ComputeUnit(std::string name, sim::EventQueue &eq,
                         unsigned cu_id, const GpuConfig &cfg,
                         mem::MemDevice &l1_dev,
                         mem::BackingStore &backing,
                         mem::MemRequestPool &request_pool)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      id(cu_id),
      config(cfg),
      l1(l1_dev),
      store(backing),
      pool(request_pool),
      simdWfs(cfg.simdsPerCu),
      rrIndex(cfg.simdsPerCu, 0),
      descTick(this->name() + ".tick"),
      descWake(this->name() + ".wake"),
      descRescue(this->name() + ".rescue"),
      descSwitchReq(this->name() + ".switchReq"),
      descWgDone(this->name() + ".wgDone"),
      statGroup(this->name()),
      numInstructions(statGroup.addScalar("instructions",
                                          "instructions issued")),
      numAtomics(statGroup.addScalar("atomics",
                                     "atomic instructions issued")),
      numWaitingAtomicsIssued(statGroup.addScalar(
          "waitingAtomics", "waiting atomic instructions issued")),
      numArmWaits(statGroup.addScalar("armWaits",
                                      "wait instructions issued")),
      numSleeps(statGroup.addScalar("sleeps",
                                    "s_sleep instructions issued")),
      numBarriers(statGroup.addScalar("barriers",
                                      "WG barrier arrivals")),
      numStalls(statGroup.addScalar("syncStalls",
                                    "wavefronts entering WaitSync")),
      numRescues(statGroup.addScalar("stallRescues",
                                     "stall rescue timers fired")),
      activeCycles(statGroup.addScalar("activeCycles",
                                       "cycles with >=1 issue"))
{
}

bool
ComputeUnit::canHost(const isa::Kernel &kernel) const
{
    if (offlineFlag)
        return false;
    if (ldsUsed + kernel.ldsBytes > config.ldsBytesPerCu)
        return false;
    if (resident.size() >= kernel.maxWgsPerCu)
        return false;

    // Greedy least-loaded assignment of the WG's wavefronts.
    std::vector<unsigned> load(config.simdsPerCu);
    for (unsigned s = 0; s < config.simdsPerCu; ++s)
        load[s] = simdWfs[s].size();
    for (unsigned w = 0; w < kernel.wavefrontsPerWg(); ++w) {
        auto it = std::min_element(load.begin(), load.end());
        if (*it >= config.wavefrontsPerSimd)
            return false;
        ++*it;
    }
    return true;
}

void
ComputeUnit::placeWg(WorkGroup *wg)
{
    ifp_assert(canHost(*wg->kernel), "%s cannot host wg%d",
               name().c_str(), wg->id);
    resident.push_back(wg);
    ldsUsed += wg->kernel->ldsBytes;
    wg->cuId = static_cast<int>(id);

    for (auto &wf : wg->wavefronts) {
        unsigned best = 0;
        for (unsigned s = 1; s < config.simdsPerCu; ++s) {
            if (simdWfs[s].size() < simdWfs[best].size())
                best = s;
        }
        wf->simdSlot = best;
        simdWfs[best].push_back(wf.get());
    }
}

void
ComputeUnit::removeWg(WorkGroup *wg)
{
    auto it = std::find(resident.begin(), resident.end(), wg);
    ifp_assert(it != resident.end(), "%s: wg%d not resident",
               name().c_str(), wg->id);
    resident.erase(it);
    ldsUsed -= wg->kernel->ldsBytes;
    wg->cuId = -1;

    for (auto &simd : simdWfs) {
        std::erase_if(simd, [wg](const Wavefront *wf) {
            return wf->wg == wg;
        });
    }
    for (unsigned s = 0; s < config.simdsPerCu; ++s) {
        if (rrIndex[s] >= simdWfs[s].size())
            rrIndex[s] = 0;
    }
    drainCallbacks.erase(wg->id);
}

void
ComputeUnit::activateWg(WorkGroup *wg)
{
    ifp_assert(wg->cuId == static_cast<int>(id),
               "activating wg%d on wrong CU", wg->id);
    wg->setState(WgState::Running, curTick());
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgActivated,
                   wg->id, static_cast<int>(id));
    for (auto &wf : wg->wavefronts) {
        if (wf->state == WfState::WaitSync)
            wakeWf(*wf);
    }
    wg->hasWaitCond = false;
    wg->resumePending = false;
    notifyReady();
}

void
ComputeUnit::resumeWaitingWfs(WorkGroup *wg)
{
    for (auto &wf : wg->wavefronts) {
        if (wf->state == WfState::WaitSync)
            wakeWf(*wf);
    }
    wg->hasWaitCond = false;
    notifyReady();
}

void
ComputeUnit::beginDrain(WorkGroup *wg, std::function<void()> drained)
{
    ifp_assert(wg->state == WgState::SwitchingOut,
               "draining wg%d in state %s", wg->id,
               wgStateName(wg->state));
    // Cut sleeps short; their wake events become stale via the epoch.
    for (auto &wf : wg->wavefronts) {
        if (wf->state == WfState::Sleeping)
            wakeWf(*wf);
    }
    drainCallbacks[wg->id] = std::move(drained);
    checkDrained(wg);
}

void
ComputeUnit::checkDrained(WorkGroup *wg)
{
    auto it = drainCallbacks.find(wg->id);
    if (it == drainCallbacks.end())
        return;
    for (const auto &wf : wg->wavefronts) {
        if (wf->state == WfState::WaitMem || wf->state == WfState::Busy)
            return;
    }
    auto cb = std::move(it->second);
    drainCallbacks.erase(it);
    cb();
}

void
ComputeUnit::wakeWf(Wavefront &wf)
{
    ifp_assert(wf.state != WfState::Done, "waking a done wavefront");
    sim::Tick now = curTick();
    if (wf.state == WfState::WaitSync || wf.state == WfState::Sleeping)
        wf.wg->endWait(now, wf.state == WfState::Sleeping);
    wf.state = WfState::Ready;
    ++wf.waitEpoch;
    notifyReady();
}

void
ComputeUnit::notifyReady()
{
    if (tickScheduled || !anyIssuable())
        return;
    tickScheduled = true;
    eventq().schedule(clockEdge(1), [this] { tick(); }, descTick);
}

bool
ComputeUnit::issuable(const Wavefront &wf) const
{
    return wf.state == WfState::Ready &&
           wf.wg->state == WgState::Running;
}

bool
ComputeUnit::anyIssuable() const
{
    for (const auto &simd : simdWfs) {
        for (const Wavefront *wf : simd) {
            if (issuable(*wf))
                return true;
        }
    }
    return false;
}

void
ComputeUnit::tick()
{
    tickScheduled = false;
    bool issued = false;

    for (unsigned s = 0; s < config.simdsPerCu; ++s) {
        // Snapshot: executeInstr may complete a WG and mutate lists.
        auto &simd = simdWfs[s];
        if (simd.empty())
            continue;
        unsigned n = simd.size();
        if (oracle) {
            // Enumerate the issuable wavefronts in round-robin scan
            // order so preferred index 0 is the stock pick; the
            // oracle may issue any of them (SIMT arbitration order
            // is unspecified).
            std::vector<unsigned> cands;
            for (unsigned k = 0; k < n; ++k) {
                unsigned idx = (rrIndex[s] + k) % n;
                if (issuable(*simd[idx]))
                    cands.push_back(idx);
            }
            if (cands.empty())
                continue;
            unsigned pick = 0;
            if (cands.size() > 1) {
                std::vector<int> actors;
                actors.reserve(cands.size());
                for (unsigned c : cands)
                    actors.push_back(simd[c]->wg->id);
                pick = oracle->chooseWithActors(
                    sim::ChoicePoint::WavefrontIssue,
                    static_cast<unsigned>(cands.size()), 0,
                    actors.data());
            }
            unsigned idx = cands[pick];
            rrIndex[s] = (idx + 1) % n;
            executeInstr(*simd[idx]);
            issued = true;
            continue;
        }
        for (unsigned k = 0; k < n; ++k) {
            unsigned idx = (rrIndex[s] + k) % n;
            Wavefront *wf = simd[idx];
            if (!issuable(*wf))
                continue;
            rrIndex[s] = (idx + 1) % n;
            executeInstr(*wf);
            issued = true;
            break;
        }
    }

    if (issued)
        ++activeCycles;
    notifyReady();
}

void
ComputeUnit::doBarrier(Wavefront &wf)
{
    WorkGroup *wg = wf.wg;
    ++numBarriers;
    ++wf.pc;
    wf.state = WfState::WaitBarrier;
    ++wg->barrierArrived;

    unsigned alive = wg->wavefronts.size() - wg->doneWfs;
    if (wg->barrierArrived >= alive) {
        wg->barrierArrived = 0;
        for (auto &other : wg->wavefronts) {
            if (other->state == WfState::WaitBarrier) {
                other->state = WfState::Ready;
                ++other->waitEpoch;
            }
        }
        notifyReady();
    }
    wg->refreshRunBucket(curTick());
}

void
ComputeUnit::executeInstr(Wavefront &wf)
{
    const isa::Kernel &kernel = *wf.wg->kernel;
    ifp_assert(wf.pc < kernel.code.size(),
               "wg%d wf%u pc %zu past end of kernel '%s'", wf.wg->id,
               wf.idInWg, wf.pc, kernel.name.c_str());
    const isa::Instr &in = kernel.code[wf.pc];
    ++wf.instructionsExecuted;
    ++numInstructions;

    using isa::Opcode;
    auto rhs = [&](const isa::Instr &i) {
        return i.useImm ? i.imm : wf.reg(i.src1);
    };

    switch (in.op) {
      case Opcode::Nop:
        ++wf.pc;
        return;
      case Opcode::Movi:
        wf.setReg(in.dst, in.imm);
        ++wf.pc;
        return;
      case Opcode::Mov:
        wf.setReg(in.dst, wf.reg(in.src0));
        ++wf.pc;
        return;
      case Opcode::Add:
        wf.setReg(in.dst, wf.reg(in.src0) + rhs(in));
        ++wf.pc;
        return;
      case Opcode::Sub:
        wf.setReg(in.dst, wf.reg(in.src0) - rhs(in));
        ++wf.pc;
        return;
      case Opcode::Mul:
        wf.setReg(in.dst, wf.reg(in.src0) * rhs(in));
        ++wf.pc;
        return;
      case Opcode::Div: {
        std::int64_t d = rhs(in);
        ifp_assert(d != 0, "division by zero in kernel '%s'",
                   kernel.name.c_str());
        wf.setReg(in.dst, wf.reg(in.src0) / d);
        ++wf.pc;
        return;
      }
      case Opcode::Rem: {
        std::int64_t d = rhs(in);
        ifp_assert(d != 0, "remainder by zero in kernel '%s'",
                   kernel.name.c_str());
        wf.setReg(in.dst, wf.reg(in.src0) % d);
        ++wf.pc;
        return;
      }
      case Opcode::And:
        wf.setReg(in.dst, wf.reg(in.src0) & rhs(in));
        ++wf.pc;
        return;
      case Opcode::Or:
        wf.setReg(in.dst, wf.reg(in.src0) | rhs(in));
        ++wf.pc;
        return;
      case Opcode::Xor:
        wf.setReg(in.dst, wf.reg(in.src0) ^ rhs(in));
        ++wf.pc;
        return;
      case Opcode::Shl:
        wf.setReg(in.dst, wf.reg(in.src0) << rhs(in));
        ++wf.pc;
        return;
      case Opcode::Shr:
        wf.setReg(in.dst,
                  static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(wf.reg(in.src0)) >>
                      rhs(in)));
        ++wf.pc;
        return;
      case Opcode::CmpEq:
        wf.setReg(in.dst, wf.reg(in.src0) == rhs(in) ? 1 : 0);
        ++wf.pc;
        return;
      case Opcode::CmpNe:
        wf.setReg(in.dst, wf.reg(in.src0) != rhs(in) ? 1 : 0);
        ++wf.pc;
        return;
      case Opcode::CmpLt:
        wf.setReg(in.dst, wf.reg(in.src0) < rhs(in) ? 1 : 0);
        ++wf.pc;
        return;
      case Opcode::CmpLe:
        wf.setReg(in.dst, wf.reg(in.src0) <= rhs(in) ? 1 : 0);
        ++wf.pc;
        return;
      case Opcode::Bz:
        wf.pc = wf.reg(in.src0) == 0 ? in.imm : wf.pc + 1;
        return;
      case Opcode::Bnz:
        wf.pc = wf.reg(in.src0) != 0 ? in.imm : wf.pc + 1;
        return;
      case Opcode::Br:
        wf.pc = in.imm;
        return;
      case Opcode::LdLds:
        wf.setReg(in.dst,
                  wf.wg->ldsRead(wf.reg(in.src0) + in.imm));
        ++wf.pc;
        wf.state = WfState::Busy;
        scheduleWake(wf, config.ldsLatency);
        return;
      case Opcode::StLds:
        wf.wg->ldsWrite(wf.reg(in.src0) + in.imm, wf.reg(in.src1));
        ++wf.pc;
        wf.state = WfState::Busy;
        scheduleWake(wf, config.ldsLatency);
        return;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Atom:
      case Opcode::AtomWait:
      case Opcode::ArmWait:
        issueMemRequest(wf, in);
        return;
      case Opcode::SleepR: {
        ++numSleeps;
        std::int64_t cycles = wf.reg(in.src0);
        ifp_assert(cycles > 0, "s_sleep with non-positive duration");
        ++wf.pc;
        wf.state = WfState::Sleeping;
        wf.wg->beginWait(curTick(), /*spin=*/true);
        scheduleWake(wf, static_cast<sim::Cycles>(cycles));
        return;
      }
      case Opcode::Valu:
        ++wf.pc;
        wf.state = WfState::Busy;
        scheduleWake(wf, static_cast<sim::Cycles>(in.imm));
        return;
      case Opcode::Bar:
        doBarrier(wf);
        return;
      case Opcode::Halt: {
        wf.state = WfState::Done;
        WorkGroup *wg = wf.wg;
        ++wg->doneWfs;
        // Late arrivals at a barrier must not wait for done WFs.
        if (wg->barrierArrived > 0 &&
            wg->barrierArrived >= wg->wavefronts.size() - wg->doneWfs) {
            wg->barrierArrived = 0;
            for (auto &other : wg->wavefronts) {
                if (other->state == WfState::WaitBarrier) {
                    other->state = WfState::Ready;
                    ++other->waitEpoch;
                }
            }
        }
        if (wg->complete()) {
            wg->completeTick = curTick();
            // Defer so the listener can safely mutate CU state.
            eventq().schedule(curTick(), [this, wg] {
                if (listener)
                    listener->wgCompleted(wg);
            }, descWgDone);
        } else {
            wg->refreshRunBucket(curTick());
        }
        return;
      }
    }
    ifp_panic("unhandled opcode in kernel '%s'", kernel.name.c_str());
}

void
ComputeUnit::issueMemRequest(Wavefront &wf, const isa::Instr &in)
{
    using isa::Opcode;
    mem::MemRequestPtr req = pool.allocate();
    req->addr = static_cast<mem::Addr>(wf.reg(in.src0) + in.imm);
    req->size = 8;
    req->cuId = static_cast<int>(id);
    req->wgId = wf.wg->id;
    req->wfId = static_cast<int>(wf.idInWg);
    req->issueTick = curTick();
    req->acquire = in.acquire;
    req->release = in.release;

    switch (in.op) {
      case Opcode::Ld:
        req->op = mem::MemOp::Read;
        break;
      case Opcode::St:
        req->op = mem::MemOp::Write;
        req->operand = wf.reg(in.src1);
        break;
      case Opcode::Atom:
      case Opcode::AtomWait:
        req->op = mem::MemOp::Atomic;
        req->aop = in.aop;
        req->operand = wf.reg(in.src1);
        req->compare = wf.reg(in.src2);
        req->waiting = in.op == Opcode::AtomWait;
        req->expected = wf.reg(in.src2);
        ++numAtomics;
        ++wf.atomicsExecuted;
        if (req->waiting)
            ++numWaitingAtomicsIssued;
        break;
      case Opcode::ArmWait:
        req->op = mem::MemOp::ArmWait;
        req->expected = wf.reg(in.src1);
        ++numArmWaits;
        // The wait instruction completes architecturally; waiting
        // happens via the response's WaitDecision.
        ++wf.pc;
        break;
      default:
        ifp_panic("not a memory opcode");
    }

    wf.state = WfState::WaitMem;
    ++wf.wg->memWaitWfs;
    wf.wg->refreshRunBucket(curTick());
    // The transport chain owns the request until it responds; the
    // typed responder slot cannot form an ownership cycle the way an
    // owning std::function capture could.
    req->setResponder(this, reinterpret_cast<std::uint64_t>(&wf));
    l1.access(req);
}

void
ComputeUnit::onMemResponse(mem::MemRequest &req, std::uint64_t tag)
{
    memResponse(*reinterpret_cast<Wavefront *>(tag), req);
}

void
ComputeUnit::memResponse(Wavefront &wf, const mem::MemRequest &req)
{
    ifp_assert(wf.state == WfState::WaitMem,
               "memory response for wg%d wf%u in state %d", wf.wg->id,
               wf.idInWg, static_cast<int>(wf.state));
    ifp_assert(wf.wg->memWaitWfs > 0, "wg%d memWait underflow",
               wf.wg->id);
    --wf.wg->memWaitWfs;

    switch (req.op) {
      case mem::MemOp::Read: {
        const isa::Instr &in = wf.wg->kernel->code[wf.pc];
        wf.setReg(in.dst, store.read(req.addr, 8));
        ++wf.pc;
        wf.state = WfState::Ready;
        break;
      }
      case mem::MemOp::Write:
        ++wf.pc;
        wf.state = WfState::Ready;
        break;
      case mem::MemOp::Atomic: {
        if (!req.waitFailed) {
            const isa::Instr &in = wf.wg->kernel->code[wf.pc];
            wf.setReg(in.dst, req.result);
            ++wf.pc;
            wf.state = WfState::Ready;
        } else {
            // Keep pc at the waiting atomic: Mesa semantics, the
            // instruction re-executes when the WG resumes.
            wf.state = WfState::Ready;
            applyWaitDecision(wf, req.addr, waitExpectedOf(req),
                              req.decision);
        }
        break;
      }
      case mem::MemOp::ArmWait:
        // pc already advanced at issue.
        wf.state = WfState::Ready;
        applyWaitDecision(wf, req.addr, req.expected, req.decision);
        break;
    }

    wf.wg->refreshRunBucket(curTick());
    if (wf.state == WfState::Ready)
        notifyReady();
    checkDrained(wf.wg);
}

void
ComputeUnit::applyWaitDecision(Wavefront &wf, mem::Addr addr,
                               mem::MemValue expected,
                               const mem::WaitDecision &decision)
{
    WorkGroup *wg = wf.wg;
    switch (decision.kind) {
      case mem::WaitKind::Proceed:
      case mem::WaitKind::Retry:
        // Busy retry (Monitor Log full / no controller installed).
        wf.state = WfState::Ready;
        return;
      case mem::WaitKind::Stall: {
        ++numStalls;
        wf.state = WfState::WaitSync;
        wg->beginWait(curTick());
        wg->hasWaitCond = true;
        wg->waitAddr = addr;
        wg->waitExpected = expected;
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgStalled, wg->id,
                       static_cast<int>(id), sim::StallReason::Waiting,
                       addr, static_cast<std::int64_t>(expected));
        if (decision.timeoutCycles > 0)
            scheduleRescue(wf, addr, expected, decision.timeoutCycles);
        return;
      }
      case mem::WaitKind::Switch: {
        ++numStalls;
        wf.state = WfState::WaitSync;
        wg->beginWait(curTick());
        wg->hasWaitCond = true;
        wg->waitAddr = addr;
        wg->waitExpected = expected;
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgStalled, wg->id,
                       static_cast<int>(id), sim::StallReason::Waiting,
                       addr, static_cast<std::int64_t>(expected));
        sim::Cycles rescue = decision.timeoutCycles;
        // Defer: the listener re-enters CU residency management.
        eventq().schedule(curTick(), [this, wg, rescue] {
            if (listener)
                listener->wgWantsSwitch(wg, rescue);
        }, descSwitchReq);
        return;
      }
    }
}

void
ComputeUnit::scheduleWake(Wavefront &wf, sim::Cycles cycles)
{
    Wavefront *wfp = &wf;
    std::uint64_t epoch = wf.waitEpoch;
    eventq().schedule(clockEdge(cycles), [this, wfp, epoch] {
        if (wfp->waitEpoch != epoch)
            return;  // woken by another path (drain, resume)
        if (wfp->state != WfState::Busy &&
            wfp->state != WfState::Sleeping) {
            return;
        }
        wakeWf(*wfp);
        checkDrained(wfp->wg);
    }, descWake);
}

void
ComputeUnit::scheduleRescue(Wavefront &wf, mem::Addr addr,
                            mem::MemValue expected, sim::Cycles cycles)
{
    Wavefront *wfp = &wf;
    std::uint64_t epoch = wf.waitEpoch;
    eventq().schedule(clockEdge(cycles),
                      [this, wfp, epoch, addr, expected] {
        if (wfp->waitEpoch != epoch ||
            wfp->state != WfState::WaitSync) {
            return;  // resumed in the meantime
        }
        if (wfp->wg->cuId != static_cast<int>(id) ||
            wfp->wg->state != WgState::Running) {
            return;  // swapped out: the CP rescue owns it now
        }
        ++numRescues;
        mem::WaitDecision next{mem::WaitKind::Proceed, 0};
        if (observer) {
            next = observer->onStallTimeout(wfp->wg->id, addr,
                                            expected);
        }
        switch (next.kind) {
          case mem::WaitKind::Proceed:
          case mem::WaitKind::Retry:
            wfp->wg->hasWaitCond = false;
            wakeWf(*wfp);
            return;
          case mem::WaitKind::Stall:
            // Re-arm with the controller's new deadline. Bump the
            // epoch so only the new timer is live.
            ++wfp->waitEpoch;
            scheduleRescue(*wfp, addr, expected,
                           next.timeoutCycles > 0 ? next.timeoutCycles
                                                  : 1);
            return;
          case mem::WaitKind::Switch: {
            WorkGroup *wg = wfp->wg;
            sim::Cycles rescue = next.timeoutCycles;
            eventq().schedule(curTick(), [this, wg, rescue] {
                if (listener)
                    listener->wgWantsSwitch(wg, rescue);
            }, descSwitchReq);
            return;
          }
        }
    }, descRescue);
}

} // namespace ifp::gpu
