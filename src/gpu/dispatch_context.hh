/**
 * @file
 * DispatchContext: one kernel launch as a first-class schedulable
 * entity.
 *
 * The multi-tenant serving redesign turns "one kernel, one grid" into
 * per-kernel dispatch contexts: the Dispatcher owns a set of
 * concurrently-resident contexts, each with its own WG id range,
 * dispatch queues, completion tracking, stat shadows and priority.
 * The Command Processor's AdmissionScheduler decides which contexts
 * are resident and carves the CUs between them; the dispatcher only
 * places WGs onto CUs its context owns.
 *
 * Contexts are created up front (enqueueKernelAt pre-creates them so
 * arrival events carry no payload) and pass through:
 *
 *     Created --arrival--> Queued --admission--> Resident --> Complete
 *
 * WG ids are globally unique and dense across contexts, so everything
 * keyed by WG id (SyncMon waiters, CP rescue deadlines, CU drain
 * callbacks) works unchanged in multi-kernel runs.
 */

#ifndef IFP_GPU_DISPATCH_CONTEXT_HH
#define IFP_GPU_DISPATCH_CONTEXT_HH

#include <cstdint>
#include <deque>
#include <string>

#include "gpu/sched_iface.hh"
#include "isa/kernel.hh"
#include "sim/types.hh"

namespace ifp::gpu {

/** Per-launch scheduling parameters of one enqueued kernel. */
struct LaunchOptions
{
    /** Client identity, for fairness accounting ("" = anonymous). */
    std::string tenant;
    /** Higher runs first; ties broken by arrival, then ctx id. */
    int priority = 0;
    /**
     * Turnaround SLO in GPU cycles measured from enqueue (0 = none).
     * Only recorded — admission does not deadline-schedule.
     */
    sim::Cycles deadlineCycles = 0;
    /** Per-context lifecycle hooks (may be null). */
    KernelListener *listener = nullptr;
};

/** Lifecycle of a dispatch context. */
enum class ContextState
{
    Created,   //!< pre-created, arrival event not fired yet
    Queued,    //!< arrived, waiting for admission
    Resident,  //!< admitted, owns CUs, WGs dispatchable
    Complete,  //!< every WG done
};

/** Printable name of a ContextState. */
const char *contextStateName(ContextState state);

/** One kernel launch under multi-kernel scheduling. */
class DispatchContext
{
  public:
    DispatchContext(int ctx_id, isa::Kernel k, LaunchOptions launch_opts,
                    sim::Tick enqueue_tick)
        : id(ctx_id), kernel(std::move(k)), opts(std::move(launch_opts)),
          enqueueTick(enqueue_tick)
    {
    }

    const int id;
    /**
     * By-value copy: serving enqueues outlive the caller's kernel
     * object, and every WorkGroup of the context points into this
     * copy.
     */
    const isa::Kernel kernel;
    const LaunchOptions opts;

    ContextState state = ContextState::Created;

    /// @name Lifecycle timestamps
    /// @{
    sim::Tick enqueueTick = 0;            //!< arrival time
    sim::Tick admitTick = 0;              //!< made resident
    sim::Tick firstDispatchTick = sim::maxTick;
    sim::Tick completeTick = 0;
    /// @}

    /// @name WG bookkeeping
    /// @{
    int firstWg = 0;          //!< first global WG id of the context
    unsigned numWgs = 0;
    unsigned completed = 0;

    /** Fresh WGs awaiting their first dispatch, in id order. */
    std::deque<int> pendingFresh;
    /** Swapped-out WGs eligible to swap back in, in resume order. */
    std::deque<int> readySwapIn;

    bool contains(int wg_id) const
    {
        return wg_id >= firstWg &&
               wg_id < firstWg + static_cast<int>(numWgs);
    }

    bool complete() const { return completed == numWgs; }

    /** WGs not yet Done (the context's CU demand). */
    unsigned liveWgs() const { return numWgs - completed; }
    /// @}

    /// @name Stat shadows (the per-kernel view of the global Scalars)
    /// @{
    std::uint64_t dispatches = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t preemptions = 0;   //!< forced WG preemptions
    std::uint64_t cusGained = 0;     //!< CU-ownership grants
    std::uint64_t cusLost = 0;       //!< CU-ownership revocations
    /// @}
};

} // namespace ifp::gpu

#endif // IFP_GPU_DISPATCH_CONTEXT_HH
