/**
 * @file
 * GPU configuration, defaulted to Table 1 of the paper.
 */

#ifndef IFP_GPU_GPU_CONFIG_HH
#define IFP_GPU_GPU_CONFIG_HH

#include "mem/dma.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "sim/types.hh"

namespace ifp::gpu {

/** Per-CU and system-wide GPU parameters (Table 1). */
struct GpuConfig
{
    unsigned numCus = 8;
    unsigned simdsPerCu = 2;
    unsigned simdWidth = 64;
    unsigned wavefrontsPerSimd = 20;
    unsigned ldsBytesPerCu = 64 * 1024;

    /** GPU core clock: 2 GHz. */
    sim::Tick clockPeriod = sim::periodFromFrequency(2'000'000'000ULL);

    /// @name Instruction timing
    /// @{
    sim::Cycles ldsLatency = 4;
    /** Cycles from WG reservation to its wavefronts becoming ready. */
    sim::Cycles dispatchLatency = 100;
    /// @}

    mem::L1Config l1;
    mem::L2Config l2;
    mem::DramConfig dram;
    mem::DmaConfig dma;
};

} // namespace ifp::gpu

#endif // IFP_GPU_GPU_CONFIG_HH
