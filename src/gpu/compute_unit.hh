/**
 * @file
 * Compute Unit: SIMD issue, instruction semantics and WG residency.
 *
 * Each CU has a number of SIMD units; every GPU cycle each SIMD can
 * issue one instruction from a ready wavefront, selected round-robin
 * (the fairness GPUs provide for intra-WG forward progress). The CU is
 * event-driven: it only ticks while at least one wavefront can issue,
 * so stalled/sleeping/waiting configurations consume no host time.
 *
 * The CU also implements the waiting-state machine of the paper:
 * failed waiting atomics and armed wait-instructions put wavefronts
 * into WaitSync per the controller's WaitDecision, stall rescue timers
 * re-consult the controller on expiry, and drain logic quiesces a WG
 * before its context is saved.
 */

#ifndef IFP_GPU_COMPUTE_UNIT_HH
#define IFP_GPU_COMPUTE_UNIT_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/sched_iface.hh"
#include "gpu/workgroup.hh"
#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "mem/sync_hooks.hh"
#include "sim/clocked.hh"
#include "sim/sched_oracle.hh"
#include "sim/stats.hh"

namespace ifp::gpu {

/** One compute unit. */
class ComputeUnit : public sim::Clocked, public mem::MemResponder
{
  public:
    ComputeUnit(std::string name, sim::EventQueue &eq, unsigned cu_id,
                const GpuConfig &cfg, mem::MemDevice &l1,
                mem::BackingStore &store,
                mem::MemRequestPool &request_pool);

    /**
     * Memory response for an issued request; the tag carries the
     * issuing Wavefront. The wavefront cannot retire while the
     * request is in flight (WaitMem), so the pointer stays valid.
     */
    void onMemResponse(mem::MemRequest &req, std::uint64_t tag) override;

    /// @name Wiring
    /// @{
    void setListener(CuListener *l) { listener = l; }
    void setSyncObserver(mem::SyncObserver *obs) { observer = obs; }
    void setTraceSink(sim::TraceSink *sink) { trace = sink; }
    /** Schedule-choice oracle for SIMD wavefront arbitration. */
    void setSchedOracle(sim::SchedOracle *o) { oracle = o; }
    /// @}

    /// @name Residency
    /// @{

    /** Whether a WG of @p kernel fits right now. */
    bool canHost(const isa::Kernel &kernel) const;

    /** Reserve resources and attach @p wg's wavefronts. */
    void placeWg(WorkGroup *wg);

    /** Detach @p wg and free its resources. */
    void removeWg(WorkGroup *wg);

    /** Make a freshly placed / restored WG's wavefronts runnable. */
    void activateWg(WorkGroup *wg);

    /** Wake every WaitSync wavefront of a resident WG (resume path). */
    void resumeWaitingWfs(WorkGroup *wg);

    /**
     * Quiesce @p wg for context saving: cancels sleeps and waits for
     * outstanding memory/pipeline occupancy to drain, then calls
     * @p drained. The caller must have taken @p wg out of Running
     * state so no new instructions issue.
     */
    void beginDrain(WorkGroup *wg, std::function<void()> drained);

    void setOffline(bool value) { offlineFlag = value; }
    bool offline() const { return offlineFlag; }

    unsigned numResidentWgs() const { return resident.size(); }
    const std::vector<WorkGroup *> &residentWgs() const
    {
        return resident;
    }
    /// @}

    /** Ensure the CU ticks while issuable wavefronts exist. */
    void notifyReady();

    unsigned cuId() const { return id; }

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    void tick();
    bool anyIssuable() const;
    bool issuable(const Wavefront &wf) const;
    void executeInstr(Wavefront &wf);
    void issueMemRequest(Wavefront &wf, const isa::Instr &in);
    void memResponse(Wavefront &wf, const mem::MemRequest &req);
    void applyWaitDecision(Wavefront &wf, mem::Addr addr,
                           mem::MemValue expected,
                           const mem::WaitDecision &decision);
    void scheduleWake(Wavefront &wf, sim::Cycles cycles);
    void scheduleRescue(Wavefront &wf, mem::Addr addr,
                        mem::MemValue expected, sim::Cycles cycles);
    void wakeWf(Wavefront &wf);
    void checkDrained(WorkGroup *wg);
    void doBarrier(Wavefront &wf);

    unsigned id;
    const GpuConfig &config;
    mem::MemDevice &l1;
    mem::BackingStore &store;
    mem::MemRequestPool &pool;
    CuListener *listener = nullptr;
    mem::SyncObserver *observer = nullptr;
    sim::TraceSink *trace = nullptr;
    sim::SchedOracle *oracle = nullptr;

    std::vector<std::vector<Wavefront *>> simdWfs;
    std::vector<unsigned> rrIndex;
    std::vector<WorkGroup *> resident;
    unsigned ldsUsed = 0;
    bool offlineFlag = false;
    bool tickScheduled = false;

    std::unordered_map<int, std::function<void()>> drainCallbacks;

    /// @name Precomputed event descriptions (hot path: no concats)
    /// @{
    std::string descTick;
    std::string descWake;
    std::string descRescue;
    std::string descSwitchReq;
    std::string descWgDone;
    /// @}

    sim::StatGroup statGroup;
    sim::Scalar &numInstructions;
    sim::Scalar &numAtomics;
    sim::Scalar &numWaitingAtomicsIssued;
    sim::Scalar &numArmWaits;
    sim::Scalar &numSleeps;
    sim::Scalar &numBarriers;
    sim::Scalar &numStalls;
    sim::Scalar &numRescues;
    sim::Scalar &activeCycles;
};

} // namespace ifp::gpu

#endif // IFP_GPU_COMPUTE_UNIT_HH
