#include "gpu/dispatcher.hh"

#include "sim/logging.hh"

namespace ifp::gpu {

Dispatcher::Dispatcher(std::string name, sim::EventQueue &eq,
                       const GpuConfig &cfg)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      statGroup(this->name()),
      dispatches(statGroup.addScalar("dispatches",
                                     "fresh WG dispatches")),
      swapOuts(statGroup.addScalar("swapOuts",
                                   "WG context switches out")),
      swapIns(statGroup.addScalar("swapIns",
                                  "WG context switches in")),
      resumesStalled(statGroup.addScalar(
          "resumesStalled", "condition-met resumes of stalled WGs")),
      resumesSwapped(statGroup.addScalar(
          "resumesSwapped",
          "condition-met resumes of switched-out WGs")),
      forcedPreemptions(statGroup.addScalar(
          "forcedPreemptions", "WGs pre-empted by kernel scheduling")),
      wgCycles(statGroup.addVector(
          "wgCycles", sim::numStallReasons,
          "WG lifetime cycles by stall reason"))
{
}

void
Dispatcher::setCus(std::vector<ComputeUnit *> cu_list)
{
    cus = std::move(cu_list);
    for (ComputeUnit *cu : cus)
        cu->setListener(this);
}

void
Dispatcher::launch(const isa::Kernel &k)
{
    ifp_assert(kernel == nullptr, "dispatcher supports one launch");
    ifp_assert(k.numWgs > 0, "kernel with zero work-groups");
    kernel = &k;
    wgs.reserve(k.numWgs);
    for (unsigned i = 0; i < k.numWgs; ++i) {
        wgs.push_back(std::make_unique<WorkGroup>(static_cast<int>(i),
                                                  k));
        pendingFresh.push_back(static_cast<int>(i));
    }
    tryDispatch();
}

WorkGroup *
Dispatcher::wg(int wg_id)
{
    ifp_assert(wg_id >= 0 &&
               static_cast<std::size_t>(wg_id) < wgs.size(),
               "bad wg id %d", wg_id);
    return wgs[wg_id].get();
}

bool
Dispatcher::hasStarvedWork() const
{
    return !pendingFresh.empty() || !readySwapIn.empty();
}

unsigned
Dispatcher::numWaitingWgs() const
{
    unsigned n = 0;
    for (const auto &w : wgs) {
        if (w->hasWaitCond && w->state != WgState::Done)
            ++n;
    }
    return n;
}

ComputeUnit *
Dispatcher::findHost(const isa::Kernel &k)
{
    ComputeUnit *best = nullptr;
    for (ComputeUnit *cu : cus) {
        if (!cu->canHost(k))
            continue;
        if (!best || cu->numResidentWgs() < best->numResidentWgs())
            best = cu;
    }
    return best;
}

void
Dispatcher::tryDispatch()
{
    bool progress = true;
    while (progress) {
        progress = false;

        if (swapInCapable && !readySwapIn.empty()) {
            WorkGroup *w = wg(readySwapIn.front());
            if (ComputeUnit *cu = findHost(*w->kernel)) {
                readySwapIn.pop_front();
                startSwapIn(w, cu);
                progress = true;
                continue;
            }
        }
        if (!pendingFresh.empty()) {
            WorkGroup *w = wg(pendingFresh.front());
            if (ComputeUnit *cu = findHost(*w->kernel)) {
                pendingFresh.pop_front();
                startFresh(w, cu);
                progress = true;
            }
        }
    }
}

void
Dispatcher::startFresh(WorkGroup *w, ComputeUnit *cu)
{
    ifp_assert(w->state == WgState::Pending,
               "fresh dispatch of wg%d in state %s", w->id,
               wgStateName(w->state));
    ++dispatches;
    cu->placeWg(w);
    w->setState(WgState::Dispatching, curTick());
    w->dispatchTick = curTick();
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::WgDispatched, w->id,
                   static_cast<int>(cu->cuId()));
    // The epoch guard lets offlineCu() cancel this activation if the
    // CU churns away during the launch latency.
    std::uint64_t epoch = w->dispatchEpoch;
    eventq().schedule(clockEdge(config.dispatchLatency),
                      [cu, w, epoch] {
        if (w->dispatchEpoch == epoch)
            cu->activateWg(w);
    }, name() + ".activate");
}

void
Dispatcher::startSwapIn(WorkGroup *w, ComputeUnit *cu)
{
    ifp_assert(w->state == WgState::ReadySwapIn,
               "swap-in of wg%d in state %s", w->id,
               wgStateName(w->state));
    ifp_assert(switcher, "no context switcher installed");
    ++swapIns;

    // Close out recovery accounting: the first swap-in after a CU
    // restoration marks the machine using the returned resources.
    for (sim::Tick restored : pendingRestores)
        recoveries.push_back(CuRecovery{restored, curTick()});
    pendingRestores.clear();

    cu->placeWg(w);
    w->setState(WgState::SwitchingIn, curTick());
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgSwapIn,
                   w->id, static_cast<int>(cu->cuId()));
    switcher->restoreContext(w, [this, w, cu] {
        ++w->contextRestores;
        cu->activateWg(w);
        // The CU may have churned offline while the restore DMA was
        // in flight; evict the WG right back out.
        if (cu->offline())
            preemptRunning(w);
    });
}

void
Dispatcher::wgWantsSwitch(WorkGroup *w, sim::Cycles rescue_cycles)
{
    if (w->state != WgState::Running)
        return;  // already switching, or completed meanwhile
    if (!switcher)
        return;  // no CP firmware: WGs can only stall
    if (rescue_cycles > 0)
        switcher->armRescue(w->id, rescue_cycles);
    beginSwapOut(w);
}

void
Dispatcher::beginSwapOut(WorkGroup *w)
{
    ifp_assert(w->cuId >= 0, "swap-out of non-resident wg%d", w->id);
    ++swapOuts;
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgSwitchOut,
                   w->id, w->cuId);
    w->setState(WgState::SwitchingOut, curTick());
    ComputeUnit *cu = cus[w->cuId];
    cu->beginDrain(w, [this, w] {
        switcher->saveContext(w, [this, w] { finishSwapOut(w); });
    });
}

void
Dispatcher::finishSwapOut(WorkGroup *w)
{
    ifp_assert(w->state == WgState::SwitchingOut,
               "finishSwapOut of wg%d in state %s", w->id,
               wgStateName(w->state));
    ComputeUnit *cu = cus[w->cuId];
    cu->removeWg(w);
    ++w->contextSaves;

    if (w->resumePending || !w->hasWaitCond) {
        w->setState(WgState::ReadySwapIn, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgSwitchedOut, w->id, -1,
                       sim::StallReason::DispatchQueue);
        w->resumePending = false;
        readySwapIn.push_back(w->id);
    } else {
        w->setState(WgState::SwappedOut, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgSwitchedOut, w->id, -1,
                       sim::StallReason::Waiting, w->waitAddr,
                       static_cast<std::int64_t>(w->waitExpected));
        // Make sure a CP rescue exists: a forcibly pre-empted waiting
        // WG never passed through a waiting-policy Switch decision,
        // and a missed monitor notification must not strand it.
        if (switcher && defaultRescueCycles > 0)
            switcher->armRescue(w->id, defaultRescueCycles);
    }
    tryDispatch();
}

void
Dispatcher::resumeWg(int wg_id)
{
    WorkGroup *w = wg(wg_id);
    switch (w->state) {
      case WgState::Running: {
        ++resumesStalled;
        if (switcher)
            switcher->cancelRescue(wg_id);
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgResumed, wg_id, w->cuId);
        cus[w->cuId]->resumeWaitingWfs(w);
        return;
      }
      case WgState::SwitchingOut:
        w->resumePending = true;
        return;
      case WgState::SwappedOut: {
        ++resumesSwapped;
        if (switcher)
            switcher->cancelRescue(wg_id);
        w->setState(WgState::ReadySwapIn, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgResumed, wg_id, -1);
        w->hasWaitCond = false;
        readySwapIn.push_back(wg_id);
        tryDispatch();
        return;
      }
      case WgState::Pending:
      case WgState::Dispatching:
      case WgState::ReadySwapIn:
      case WgState::SwitchingIn:
      case WgState::Done:
        return;  // nothing to do / already on its way
    }
}

void
Dispatcher::wgCompleted(WorkGroup *w)
{
    ifp_assert(w->state == WgState::Running ||
               w->state == WgState::SwitchingOut,
               "completion of wg%d in state %s", w->id,
               wgStateName(w->state));
    ComputeUnit *cu = cus[w->cuId];
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgCompleted,
                   w->id, w->cuId);
    cu->removeWg(w);
    w->setState(WgState::Done, curTick());
    if (switcher)
        switcher->cancelRescue(w->id);
    ++completed;
    if (completed == wgs.size()) {
        if (onComplete)
            onComplete();
    } else {
        tryDispatch();
    }
}

void
Dispatcher::onlineCu(unsigned cu_id)
{
    ifp_assert(cu_id < cus.size(), "bad CU id %u", cu_id);
    if (!cus[cu_id]->offline())
        return;  // idempotent under overlapping fault windows
    cus[cu_id]->setOffline(false);
    pendingRestores.push_back(curTick());
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CuOnline, -1,
                   static_cast<int>(cu_id));
    tryDispatch();
}

void
Dispatcher::preemptRunning(WorkGroup *w)
{
    ++forcedPreemptions;
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgPreempted,
                   w->id, w->cuId);
    w->setState(WgState::SwitchingOut, curTick());
    ComputeUnit *host = cus[w->cuId];
    host->beginDrain(w, [this, w] {
        if (switcher) {
            switcher->saveContext(w, [this, w] { finishSwapOut(w); });
        } else {
            finishSwapOut(w);
        }
    });
}

void
Dispatcher::offlineCu(unsigned cu_id)
{
    ifp_assert(cu_id < cus.size(), "bad CU id %u", cu_id);
    ComputeUnit *cu = cus[cu_id];
    if (cu->offline())
        return;  // idempotent under overlapping fault windows
    cu->setOffline(true);
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CuOffline,
                   -1, static_cast<int>(cu_id));

    // Snapshot: beginSwapOut mutates the resident list asynchronously.
    std::vector<WorkGroup *> victims = cu->residentWgs();
    std::vector<int> requeued;
    for (WorkGroup *w : victims) {
        if (w->state == WgState::Dispatching) {
            // Caught inside the launch latency: cancel the pending
            // activation (epoch guard) and put the WG back in the
            // fresh queue — it never ran, so there is no context to
            // save.
            ++w->dispatchEpoch;
            ++forcedPreemptions;
            sim::emitTrace(trace, curTick(),
                           sim::TraceEventKind::WgPreempted, w->id,
                           static_cast<int>(cu_id));
            cu->removeWg(w);
            w->setState(WgState::Pending, curTick());
            requeued.push_back(w->id);
            continue;
        }
        if (w->state != WgState::Running)
            continue;  // already switching out or restoring
        preemptRunning(w);
    }
    if (!requeued.empty()) {
        // Front of the queue, original order: they were dispatched
        // first, so they go back out first.
        pendingFresh.insert(pendingFresh.begin(), requeued.begin(),
                            requeued.end());
        tryDispatch();
    }
}

void
Dispatcher::accumulateWgCycleStats(sim::Tick end_tick)
{
    double period = static_cast<double>(clockPeriod());
    for (auto &w : wgs) {
        // Completed WGs closed their books at completeTick; anything
        // still alive (deadlocked / stranded) is charged to end_tick.
        w->closeAccounting(end_tick);
        for (std::size_t r = 0; r < sim::numStallReasons; ++r)
            wgCycles[r] += static_cast<double>(w->reasonTicks[r]) /
                           period;
    }
}

} // namespace ifp::gpu
