#include "gpu/dispatcher.hh"

#include "sim/logging.hh"

namespace ifp::gpu {

const char *
contextStateName(ContextState state)
{
    switch (state) {
      case ContextState::Created: return "created";
      case ContextState::Queued: return "queued";
      case ContextState::Resident: return "resident";
      case ContextState::Complete: return "complete";
    }
    return "?";
}

Dispatcher::Dispatcher(std::string name, sim::EventQueue &eq,
                       const GpuConfig &cfg)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      statGroup(this->name()),
      dispatches(statGroup.addScalar("dispatches",
                                     "fresh WG dispatches")),
      swapOuts(statGroup.addScalar("swapOuts",
                                   "WG context switches out")),
      swapIns(statGroup.addScalar("swapIns",
                                  "WG context switches in")),
      resumesStalled(statGroup.addScalar(
          "resumesStalled", "condition-met resumes of stalled WGs")),
      resumesSwapped(statGroup.addScalar(
          "resumesSwapped",
          "condition-met resumes of switched-out WGs")),
      forcedPreemptions(statGroup.addScalar(
          "forcedPreemptions", "WGs pre-empted by kernel scheduling")),
      contextsAdmitted(statGroup.addScalar(
          "contextsAdmitted", "dispatch contexts made resident")),
      cuReassignments(statGroup.addScalar(
          "cuReassignments", "CU ownership changes")),
      wgCycles(statGroup.addVector(
          "wgCycles", sim::numStallReasons,
          "WG lifetime cycles by stall reason"))
{
}

void
Dispatcher::setCus(std::vector<ComputeUnit *> cu_list)
{
    cus = std::move(cu_list);
    cuOwner.assign(cus.size(), -1);
    for (ComputeUnit *cu : cus)
        cu->setListener(this);
}

int
Dispatcher::createContext(const isa::Kernel &k,
                          const LaunchOptions &opts,
                          sim::Tick enqueue_tick)
{
    ifp_assert(k.numWgs > 0, "kernel with zero work-groups");
    int ctx_id = static_cast<int>(contexts.size());
    contexts.push_back(std::make_unique<DispatchContext>(
        ctx_id, k, opts, enqueue_tick));
    DispatchContext &ctx = *contexts.back();
    ctx.firstWg = static_cast<int>(wgs.size());
    ctx.numWgs = ctx.kernel.numWgs;
    wgs.reserve(wgs.size() + ctx.numWgs);
    for (unsigned i = 0; i < ctx.numWgs; ++i) {
        int wg_id = ctx.firstWg + static_cast<int>(i);
        // WGs point into the context's own kernel copy: serving
        // enqueues outlive the caller's kernel object. The ABI wg id
        // is the context-local index — kernels address their buffers
        // with it and must not see the global id.
        wgs.push_back(std::make_unique<WorkGroup>(
            wg_id, ctx.kernel, enqueue_tick, static_cast<int>(i)));
        wgs.back()->ctxId = ctx_id;
        ctx.pendingFresh.push_back(wg_id);
    }
    return ctx_id;
}

void
Dispatcher::contextArrived(int ctx_id)
{
    DispatchContext &ctx = *context(ctx_id);
    ifp_assert(ctx.state == ContextState::Created,
               "ctx%d arrived in state %s", ctx_id,
               contextStateName(ctx.state));
    ctx.state = ContextState::Queued;
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::KernelEnqueued, -1, -1,
                   sim::StallReason::Running, 0, ctx_id);
    if (ctx.opts.listener)
        ctx.opts.listener->kernelEnqueued(ctx);
    if (listener)
        listener->kernelEnqueued(ctx);

    if (admission) {
        admission->contextEnqueued(ctx_id);
        return;
    }
    // Standalone fallback (no admission scheduler installed): admit
    // immediately and take every unowned CU.
    admitContext(ctx_id);
    std::vector<int> owner = cuOwner;
    for (int &o : owner) {
        if (o < 0)
            o = ctx_id;
    }
    setCuAssignment(owner);
}

void
Dispatcher::admitContext(int ctx_id)
{
    DispatchContext &ctx = *context(ctx_id);
    ifp_assert(ctx.state == ContextState::Queued,
               "ctx%d admitted in state %s", ctx_id,
               contextStateName(ctx.state));
    ctx.state = ContextState::Resident;
    ctx.admitTick = curTick();
    residentOrder.push_back(ctx_id);
    ++contextsAdmitted;
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::KernelAdmitted, -1, -1,
                   sim::StallReason::Running, 0, ctx_id);
    if (ctx.opts.listener)
        ctx.opts.listener->kernelAdmitted(ctx);
    if (listener)
        listener->kernelAdmitted(ctx);
}

void
Dispatcher::launch(const isa::Kernel &k)
{
    ifp_assert(contexts.empty(),
               "launch() supports one kernel; use createContext()/"
               "contextArrived() for multi-kernel runs");
    int ctx_id = createContext(k, LaunchOptions{}, curTick());
    contextArrived(ctx_id);
}

WorkGroup *
Dispatcher::wg(int wg_id)
{
    ifp_assert(wg_id >= 0 &&
               static_cast<std::size_t>(wg_id) < wgs.size(),
               "bad wg id %d", wg_id);
    return wgs[wg_id].get();
}

DispatchContext *
Dispatcher::context(int ctx_id)
{
    ifp_assert(ctx_id >= 0 &&
               static_cast<std::size_t>(ctx_id) < contexts.size(),
               "bad ctx id %d", ctx_id);
    return contexts[ctx_id].get();
}

const DispatchContext *
Dispatcher::context(int ctx_id) const
{
    ifp_assert(ctx_id >= 0 &&
               static_cast<std::size_t>(ctx_id) < contexts.size(),
               "bad ctx id %d", ctx_id);
    return contexts[ctx_id].get();
}

DispatchContext &
Dispatcher::ctxOf(const WorkGroup *w)
{
    return *contexts[w->ctxId];
}

bool
Dispatcher::cuHostsContext(unsigned cu_id, int ctx_id) const
{
    const DispatchContext &ctx = *contexts[ctx_id];
    for (unsigned i = 0; i < ctx.numWgs; ++i) {
        const WorkGroup *w = wgs[ctx.firstWg + static_cast<int>(i)].get();
        if (w->cuId == static_cast<int>(cu_id))
            return true;
    }
    return false;
}

bool
Dispatcher::hasStarvedWork() const
{
    for (int ctx_id : residentOrder) {
        const DispatchContext &ctx = *contexts[ctx_id];
        if (!ctx.pendingFresh.empty() || !ctx.readySwapIn.empty())
            return true;
    }
    return false;
}

unsigned
Dispatcher::numWaitingWgs() const
{
    unsigned n = 0;
    for (const auto &w : wgs) {
        if (w->hasWaitCond && w->state != WgState::Done)
            ++n;
    }
    return n;
}

unsigned
Dispatcher::numOnlineCus() const
{
    unsigned n = 0;
    for (const ComputeUnit *cu : cus) {
        if (!cu->offline())
            ++n;
    }
    return n;
}

ComputeUnit *
Dispatcher::findHost(const DispatchContext &ctx, bool consult_oracle)
{
    ComputeUnit *best = nullptr;
    std::size_t best_pos = 0;
    std::vector<ComputeUnit *> capable;
    for (std::size_t i = 0; i < cus.size(); ++i) {
        if (cuOwner[i] != ctx.id)
            continue;
        ComputeUnit *cu = cus[i];
        if (!cu->canHost(ctx.kernel))
            continue;
        if (oracle && consult_oracle)
            capable.push_back(cu);
        if (!best || cu->numResidentWgs() < best->numResidentWgs()) {
            best = cu;
            best_pos = capable.empty() ? 0 : capable.size() - 1;
        }
    }
    if (oracle && consult_oracle && capable.size() > 1) {
        unsigned pick =
            oracle->choose(sim::ChoicePoint::HostCu,
                           static_cast<unsigned>(capable.size()),
                           static_cast<unsigned>(best_pos));
        return capable[pick];
    }
    return best;
}

void
Dispatcher::tryDispatch()
{
    if (oracle) {
        oracleDispatch();
        return;
    }
    bool progress = true;
    while (progress) {
        progress = false;
        for (int ctx_id : residentOrder) {
            DispatchContext &ctx = *contexts[ctx_id];
            if (swapInCapable && !ctx.readySwapIn.empty()) {
                WorkGroup *w = wg(ctx.readySwapIn.front());
                if (ComputeUnit *cu = findHost(ctx)) {
                    ctx.readySwapIn.pop_front();
                    startSwapIn(w, cu);
                    progress = true;
                    break;
                }
            }
            if (!ctx.pendingFresh.empty()) {
                WorkGroup *w = wg(ctx.pendingFresh.front());
                if (ComputeUnit *cu = findHost(ctx)) {
                    ctx.pendingFresh.pop_front();
                    startFresh(w, cu);
                    progress = true;
                    break;
                }
            }
        }
    }
}

void
Dispatcher::oracleDispatch()
{
    // Rebuilt after every placement: placing a WG changes hostability
    // for everyone. Candidates are enumerated in the stock scan order
    // (residentOrder, swap-ins before fresh, queue order within) so
    // preferred index 0 is exactly the WG tryDispatch() would place.
    // Unlike the stock path, any queued WG — not just the queue
    // fronts — is a legal pick: dispatch order within a kernel is
    // unspecified by the programming model, which is precisely what
    // occupancy litmus tests probe.
    for (;;) {
        struct Cand
        {
            DispatchContext *ctx;
            std::size_t pos;
            bool swapIn;
        };
        std::vector<Cand> cands;
        for (int ctx_id : residentOrder) {
            DispatchContext &ctx = *contexts[ctx_id];
            if (!findHost(ctx, /*consult_oracle=*/false))
                continue;
            if (swapInCapable) {
                for (std::size_t i = 0; i < ctx.readySwapIn.size();
                     ++i)
                    cands.push_back(Cand{&ctx, i, true});
            }
            for (std::size_t i = 0; i < ctx.pendingFresh.size(); ++i)
                cands.push_back(Cand{&ctx, i, false});
        }
        if (cands.empty())
            return;
        unsigned pick = 0;
        if (cands.size() > 1) {
            std::vector<int> actors;
            actors.reserve(cands.size());
            for (const Cand &cand : cands) {
                int stored = cand.swapIn
                                 ? cand.ctx->readySwapIn[cand.pos]
                                 : cand.ctx->pendingFresh[cand.pos];
                actors.push_back(wg(stored)->id);
            }
            pick = oracle->chooseWithActors(
                sim::ChoicePoint::DispatchPick,
                static_cast<unsigned>(cands.size()), 0, actors.data());
        }
        const Cand &c = cands[pick];
        ComputeUnit *cu = findHost(*c.ctx);
        ifp_assert(cu, "oracle dispatch lost its host CU");
        if (c.swapIn) {
            WorkGroup *w = wg(c.ctx->readySwapIn[c.pos]);
            c.ctx->readySwapIn.erase(c.ctx->readySwapIn.begin() +
                                     static_cast<std::ptrdiff_t>(c.pos));
            startSwapIn(w, cu);
        } else {
            WorkGroup *w = wg(c.ctx->pendingFresh[c.pos]);
            c.ctx->pendingFresh.erase(c.ctx->pendingFresh.begin() +
                                      static_cast<std::ptrdiff_t>(c.pos));
            startFresh(w, cu);
        }
    }
}

void
Dispatcher::startFresh(WorkGroup *w, ComputeUnit *cu)
{
    ifp_assert(w->state == WgState::Pending,
               "fresh dispatch of wg%d in state %s", w->id,
               wgStateName(w->state));
    ++dispatches;
    DispatchContext &ctx = ctxOf(w);
    ++ctx.dispatches;
    if (curTick() < ctx.firstDispatchTick)
        ctx.firstDispatchTick = curTick();
    cu->placeWg(w);
    w->setState(WgState::Dispatching, curTick());
    w->dispatchTick = curTick();
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::WgDispatched, w->id,
                   static_cast<int>(cu->cuId()));
    // The epoch guard lets offlineCu() cancel this activation if the
    // CU churns away during the launch latency.
    std::uint64_t epoch = w->dispatchEpoch;
    eventq().schedule(clockEdge(config.dispatchLatency),
                      [cu, w, epoch] {
        if (w->dispatchEpoch == epoch)
            cu->activateWg(w);
    }, name() + ".activate");
}

void
Dispatcher::startSwapIn(WorkGroup *w, ComputeUnit *cu)
{
    ifp_assert(w->state == WgState::ReadySwapIn,
               "swap-in of wg%d in state %s", w->id,
               wgStateName(w->state));
    ifp_assert(switcher, "no context switcher installed");
    ++swapIns;
    ++ctxOf(w).swapIns;

    // Close out recovery accounting: the first swap-in after a CU
    // restoration marks the machine using the returned resources.
    for (sim::Tick restored : pendingRestores)
        recoveries.push_back(CuRecovery{restored, curTick()});
    pendingRestores.clear();

    cu->placeWg(w);
    w->setState(WgState::SwitchingIn, curTick());
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgSwapIn,
                   w->id, static_cast<int>(cu->cuId()));
    switcher->restoreContext(w, [this, w, cu] {
        ++w->contextRestores;
        cu->activateWg(w);
        DispatchContext &ctx = ctxOf(w);
        if (ctx.opts.listener) {
            ctx.opts.listener->kernelResumed(
                ctx, w->id, static_cast<int>(cu->cuId()));
        }
        if (listener) {
            listener->kernelResumed(ctx, w->id,
                                    static_cast<int>(cu->cuId()));
        }
        // The CU may have churned offline while the restore DMA was
        // in flight; evict the WG right back out.
        if (cu->offline())
            preemptRunning(w);
    });
}

void
Dispatcher::wgWantsSwitch(WorkGroup *w, sim::Cycles rescue_cycles)
{
    if (w->state != WgState::Running)
        return;  // already switching, or completed meanwhile
    if (!switcher)
        return;  // no CP firmware: WGs can only stall
    if (rescue_cycles > 0)
        switcher->armRescue(w->id, rescue_cycles);
    beginSwapOut(w);
}

void
Dispatcher::beginSwapOut(WorkGroup *w)
{
    ifp_assert(w->cuId >= 0, "swap-out of non-resident wg%d", w->id);
    ++swapOuts;
    ++ctxOf(w).swapOuts;
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgSwitchOut,
                   w->id, w->cuId);
    w->setState(WgState::SwitchingOut, curTick());
    ComputeUnit *cu = cus[w->cuId];
    cu->beginDrain(w, [this, w] {
        switcher->saveContext(w, [this, w] { finishSwapOut(w); });
    });
}

void
Dispatcher::finishSwapOut(WorkGroup *w)
{
    ifp_assert(w->state == WgState::SwitchingOut,
               "finishSwapOut of wg%d in state %s", w->id,
               wgStateName(w->state));
    ComputeUnit *cu = cus[w->cuId];
    cu->removeWg(w);
    ++w->contextSaves;

    if (w->resumePending || !w->hasWaitCond) {
        w->setState(WgState::ReadySwapIn, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgSwitchedOut, w->id, -1,
                       sim::StallReason::DispatchQueue);
        w->resumePending = false;
        ctxOf(w).readySwapIn.push_back(w->id);
    } else {
        w->setState(WgState::SwappedOut, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgSwitchedOut, w->id, -1,
                       sim::StallReason::Waiting, w->waitAddr,
                       static_cast<std::int64_t>(w->waitExpected));
        // Make sure a CP rescue exists: a forcibly pre-empted waiting
        // WG never passed through a waiting-policy Switch decision,
        // and a missed monitor notification must not strand it.
        if (switcher && defaultRescueCycles > 0)
            switcher->armRescue(w->id, defaultRescueCycles);
    }
    tryDispatch();
}

void
Dispatcher::resumeWg(int wg_id)
{
    WorkGroup *w = wg(wg_id);
    switch (w->state) {
      case WgState::Running: {
        ++resumesStalled;
        if (switcher)
            switcher->cancelRescue(wg_id);
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgResumed, wg_id, w->cuId);
        cus[w->cuId]->resumeWaitingWfs(w);
        return;
      }
      case WgState::SwitchingOut:
        w->resumePending = true;
        return;
      case WgState::SwappedOut: {
        ++resumesSwapped;
        if (switcher)
            switcher->cancelRescue(wg_id);
        w->setState(WgState::ReadySwapIn, curTick());
        sim::emitTrace(trace, curTick(),
                       sim::TraceEventKind::WgResumed, wg_id, -1);
        w->hasWaitCond = false;
        ctxOf(w).readySwapIn.push_back(wg_id);
        tryDispatch();
        return;
      }
      case WgState::Pending:
      case WgState::Dispatching:
      case WgState::ReadySwapIn:
      case WgState::SwitchingIn:
      case WgState::Done:
        return;  // nothing to do / already on its way
    }
}

void
Dispatcher::contextCompleted(DispatchContext &ctx)
{
    ctx.state = ContextState::Complete;
    ctx.completeTick = curTick();
    ++completedContexts;
    for (std::size_t i = 0; i < residentOrder.size(); ++i) {
        if (residentOrder[i] == ctx.id) {
            residentOrder.erase(residentOrder.begin() +
                                static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::KernelCompleted, -1, -1,
                   sim::StallReason::Running, 0, ctx.id);
    if (ctx.opts.listener)
        ctx.opts.listener->kernelCompleted(ctx);
    if (listener)
        listener->kernelCompleted(ctx);

    if (admission) {
        // Reclaims the context's CUs and admits queued work.
        admission->contextCompleted(ctx.id);
    } else {
        std::vector<int> owner = cuOwner;
        for (int &o : owner) {
            if (o == ctx.id)
                o = -1;
        }
        setCuAssignment(owner);
    }
}

void
Dispatcher::wgCompleted(WorkGroup *w)
{
    ifp_assert(w->state == WgState::Running ||
               w->state == WgState::SwitchingOut,
               "completion of wg%d in state %s", w->id,
               wgStateName(w->state));
    ComputeUnit *cu = cus[w->cuId];
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgCompleted,
                   w->id, w->cuId);
    cu->removeWg(w);
    w->setState(WgState::Done, curTick());
    if (switcher)
        switcher->cancelRescue(w->id);
    ++completed;
    DispatchContext &ctx = ctxOf(w);
    ++ctx.completed;
    if (ctx.complete()) {
        contextCompleted(ctx);
    } else {
        tryDispatch();
    }
}

void
Dispatcher::onlineCu(unsigned cu_id)
{
    ifp_assert(cu_id < cus.size(), "bad CU id %u", cu_id);
    if (!cus[cu_id]->offline())
        return;  // idempotent under overlapping fault windows
    cus[cu_id]->setOffline(false);
    pendingRestores.push_back(curTick());
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CuOnline, -1,
                   static_cast<int>(cu_id));
    tryDispatch();
    if (admission)
        admission->cuAvailabilityChanged();
}

void
Dispatcher::notifyPreempted(WorkGroup *w, int cu_id)
{
    DispatchContext &ctx = ctxOf(w);
    ++ctx.preemptions;
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::KernelPreempted, w->id, cu_id,
                   sim::StallReason::Running, 0, ctx.id);
    if (ctx.opts.listener)
        ctx.opts.listener->kernelPreempted(ctx, w->id, cu_id);
    if (listener)
        listener->kernelPreempted(ctx, w->id, cu_id);
}

void
Dispatcher::preemptRunning(WorkGroup *w)
{
    ++forcedPreemptions;
    notifyPreempted(w, w->cuId);
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::WgPreempted,
                   w->id, w->cuId);
    w->setState(WgState::SwitchingOut, curTick());
    ComputeUnit *host = cus[w->cuId];
    host->beginDrain(w, [this, w] {
        if (switcher) {
            switcher->saveContext(w, [this, w] { finishSwapOut(w); });
        } else {
            finishSwapOut(w);
        }
    });
}

int
Dispatcher::requeueDispatching(WorkGroup *w, unsigned cu_id)
{
    // Caught inside the launch latency: cancel the pending
    // activation (epoch guard) and put the WG back in the fresh
    // queue — it never ran, so there is no context to save.
    ++w->dispatchEpoch;
    ++forcedPreemptions;
    notifyPreempted(w, static_cast<int>(cu_id));
    sim::emitTrace(trace, curTick(),
                   sim::TraceEventKind::WgPreempted, w->id,
                   static_cast<int>(cu_id));
    cus[cu_id]->removeWg(w);
    w->setState(WgState::Pending, curTick());
    return w->id;
}

void
Dispatcher::offlineCu(unsigned cu_id)
{
    ifp_assert(cu_id < cus.size(), "bad CU id %u", cu_id);
    ComputeUnit *cu = cus[cu_id];
    if (cu->offline())
        return;  // idempotent under overlapping fault windows
    cu->setOffline(true);
    sim::emitTrace(trace, curTick(), sim::TraceEventKind::CuOffline,
                   -1, static_cast<int>(cu_id));

    // Snapshot: beginSwapOut mutates the resident list asynchronously.
    std::vector<WorkGroup *> victims = cu->residentWgs();
    std::vector<int> requeued;
    for (WorkGroup *w : victims) {
        if (w->state == WgState::Dispatching) {
            requeued.push_back(requeueDispatching(w, cu_id));
            continue;
        }
        if (w->state != WgState::Running)
            continue;  // already switching out or restoring
        preemptRunning(w);
    }
    if (!requeued.empty()) {
        // Front of the queue, original order: they were dispatched
        // first, so they go back out first. All victims of one CU
        // belong to its owning context.
        std::deque<int> &queue = ctxOf(wg(requeued.front())).pendingFresh;
        queue.insert(queue.begin(), requeued.begin(), requeued.end());
        tryDispatch();
    }
    if (admission)
        admission->cuAvailabilityChanged();
}

void
Dispatcher::setCuAssignment(const std::vector<int> &owner)
{
    ifp_assert(owner.size() == cus.size(),
               "CU assignment size %zu != %zu CUs", owner.size(),
               cus.size());
    // Per-context requeue batches, front-inserted in original order.
    std::vector<std::vector<int>> requeued(contexts.size());
    bool changed = false;
    for (std::size_t i = 0; i < cus.size(); ++i) {
        int next = owner[i];
        int prev = cuOwner[i];
        if (next == prev)
            continue;
        ifp_assert(next < static_cast<int>(contexts.size()),
                   "CU %zu assigned to unknown ctx %d", i, next);
        changed = true;
        ++cuReassignments;
        if (prev >= 0)
            ++contexts[prev]->cusLost;
        if (next >= 0)
            ++contexts[next]->cusGained;

        // Revocation pre-empts the previous owner's WGs through the
        // same drain/save machinery the offline-CU scenario uses.
        std::vector<WorkGroup *> victims = cus[i]->residentWgs();
        for (WorkGroup *w : victims) {
            if (w->ctxId == next)
                continue;
            if (w->state == WgState::Dispatching) {
                requeued[w->ctxId].push_back(
                    requeueDispatching(w, static_cast<unsigned>(i)));
                continue;
            }
            if (w->state != WgState::Running)
                continue;  // already switching out or restoring
            preemptRunning(w);
        }
        cuOwner[i] = next;
    }
    for (std::size_t c = 0; c < requeued.size(); ++c) {
        if (requeued[c].empty())
            continue;
        std::deque<int> &queue = contexts[c]->pendingFresh;
        queue.insert(queue.begin(), requeued[c].begin(),
                     requeued[c].end());
    }
    if (changed)
        tryDispatch();
}

void
Dispatcher::accumulateWgCycleStats(sim::Tick end_tick)
{
    double period = static_cast<double>(clockPeriod());
    for (auto &w : wgs) {
        // Completed WGs closed their books at completeTick; anything
        // still alive (deadlocked / stranded) is charged to end_tick.
        w->closeAccounting(end_tick);
        for (std::size_t r = 0; r < sim::numStallReasons; ++r)
            wgCycles[r] += static_cast<double>(w->reasonTicks[r]) /
                           period;
    }
}

} // namespace ifp::gpu
