/**
 * @file
 * Chaos campaign: seeded random fault plans (CU churn, SyncMon
 * pressure, log jams, dropped/delayed resumes, CP stalls) against the
 * rescue-capable policies. Not a paper figure — the robustness
 * companion to Figure 15: the paper argues the CP rescue timeout
 * makes forward progress independent of *which* resources come and
 * go, so every plan a Timeout machine survives, AWG must survive too.
 * Verdicts come from the liveness oracle (core/liveness.hh).
 */

#include <cstdlib>

#include "bench_common.hh"
#include "harness/campaign.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Chaos campaign - seeded fault plans vs "
                  "rescue-capable policies (liveness verdicts)");

    harness::CampaignConfig cfg;
    cfg.workload = "SPM_G";
    cfg.policies = {core::Policy::Timeout, core::Policy::Awg,
                    core::Policy::MonNRAll};
    cfg.numPlans = 20;
    cfg.baseSeed = 1;
    cfg.params = harness::defaultEvalParams();
    cfg.params.numWgs = 32;
    cfg.params.iters = 8;
    // Stalled runs should converge quickly: a small detection window
    // is plenty at this geometry and keeps the campaign cheap.
    cfg.runCfg.deadlockWindowCycles = 200'000;

    harness::CampaignReport report = harness::runChaosCampaign(cfg);

    report.writeTable(std::cout);
    if (std::getenv("IFP_BENCH_CSV")) {
        std::cout << "\n";
        report.writeCsv(std::cout);
    }

    bool awg_ok = report.completesAllOf(core::Policy::Awg,
                                        core::Policy::Timeout);
    std::cout << "\nAWG completes every plan Timeout completes: "
              << (awg_ok ? "yes" : "NO") << "\n";
    return awg_ok ? 0 : 1;
}
