/**
 * @file
 * Queue-family throughput and resume-prediction accuracy sweep
 * (DESIGN.md §14, EXPERIMENTS.md).
 *
 * The concurrent-queue workloads block WGs on *data* conditions
 * (slot sequence numbers, drain counters) whose values climb with
 * every transported item, so they stress the SyncMon paths the
 * HeteroSync mutex/barrier suite leaves cold: the AWG predictor's
 * counting Bloom filters at high unique-update rates, and the
 * Monitor Log under many distinct monitored addresses.
 *
 * Three sweeps:
 *  1. MPMCQ: policy x ring depth x producer:consumer ratio —
 *     items/kilocycle plus AWG resume-prediction accuracy,
 *  2. PIPE: policy x ring depth at three stages,
 *  3. WSD: policy sweep of the work-stealing drain.
 *
 * Accuracy = 1 - mispredicted/predicted, where a predicted resume is
 * counted when the AWG predictor wakes a waiter and a misprediction
 * when that waiter re-registers the same condition unchanged.
 */

#include <memory>

#include "bench_common.hh"
#include "workloads/queues.hh"

namespace {

using ifp::core::Policy;
using ifp::core::RunResult;

const std::vector<Policy> queuePolicies = {
    Policy::Baseline, Policy::Sleep, Policy::Timeout, Policy::MonRAll,
    Policy::Awg};

/** Items moved per thousand GPU cycles. */
std::string
itemsPerKilocycle(const RunResult &r, std::uint64_t items)
{
    if (!r.completed || r.gpuCycles == 0)
        return r.statusString();
    return ifp::harness::formatDouble(
        static_cast<double>(items) * 1000.0 /
            static_cast<double>(r.gpuCycles),
        2);
}

/** Resume-prediction accuracy cell ("-" outside AWG). */
std::string
accuracyCell(const RunResult &r)
{
    if (r.predictedResumes == 0)
        return "-";
    double accuracy =
        1.0 - static_cast<double>(r.mispredictedResumes) /
                  static_cast<double>(r.predictedResumes);
    return ifp::harness::formatDouble(accuracy, 3);
}

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Queue-family throughput & resume prediction",
                  "MPMCQ/PIPE/WSD: data-condition waits vs. policy");

    workloads::WorkloadParams params = harness::defaultEvalParams();
    const std::uint64_t items =
        workloads::MpmcQueueWorkload::totalItems(params);

    struct MpmcCell
    {
        unsigned depth;
        unsigned producerShare;
        unsigned consumerShare;
    };
    const std::vector<MpmcCell> mpmc_cells = {
        {4, 1, 1}, {8, 1, 1}, {16, 1, 1}, {8, 3, 1}, {8, 1, 3}};

    std::cout << "\nMPMCQ: bounded MPMC ring (items/kcycle; accuracy "
                 "is AWG's resume prediction):\n";
    {
        harness::SweepRunner sweep;
        for (const MpmcCell &cell : mpmc_cells) {
            for (Policy policy : queuePolicies) {
                harness::Experiment exp;
                exp.workload = "MPMCQ";
                exp.policy = policy;
                exp.params = params;
                exp.makeWorkload = [cell] {
                    return std::make_unique<
                        workloads::MpmcQueueWorkload>(
                        cell.depth, cell.producerShare,
                        cell.consumerShare);
                };
                sweep.enqueue(exp);
            }
        }
        bench::runSweep(sweep, "queue_throughput/mpmcq");

        harness::TextTable t({"Depth", "P:C", "Baseline", "Sleep",
                              "Timeout", "MonR-All", "AWG",
                              "AWG accuracy"});
        std::size_t idx = 0;
        for (const MpmcCell &cell : mpmc_cells) {
            std::vector<std::string> row = {
                std::to_string(cell.depth),
                std::to_string(cell.producerShare) + ":" +
                    std::to_string(cell.consumerShare)};
            const RunResult *awg = nullptr;
            for (Policy policy : queuePolicies) {
                const RunResult &r = sweep.result(idx++);
                row.push_back(itemsPerKilocycle(r, items));
                if (policy == Policy::Awg)
                    awg = &r;
            }
            row.push_back(accuracyCell(*awg));
            t.addRow(row);
        }
        bench::printTable(t);
    }

    std::cout << "\nPIPE: three-stage pipeline over bounded rings "
                 "(items/kcycle):\n";
    {
        const std::vector<unsigned> depths = {4, 8, 16};
        harness::SweepRunner sweep;
        for (unsigned depth : depths) {
            for (Policy policy : queuePolicies) {
                harness::Experiment exp;
                exp.workload = "PIPE";
                exp.policy = policy;
                exp.params = params;
                exp.makeWorkload = [depth] {
                    return std::make_unique<
                        workloads::PipelineWorkload>(3, depth);
                };
                sweep.enqueue(exp);
            }
        }
        bench::runSweep(sweep, "queue_throughput/pipe");

        harness::TextTable t({"Depth", "Baseline", "Sleep", "Timeout",
                              "MonR-All", "AWG", "AWG accuracy"});
        std::size_t idx = 0;
        for (unsigned depth : depths) {
            std::vector<std::string> row = {std::to_string(depth)};
            const RunResult *awg = nullptr;
            for (Policy policy : queuePolicies) {
                const RunResult &r = sweep.result(idx++);
                row.push_back(itemsPerKilocycle(r, items));
                if (policy == Policy::Awg)
                    awg = &r;
            }
            row.push_back(accuracyCell(*awg));
            t.addRow(row);
        }
        bench::printTable(t);
    }

    std::cout << "\nWSD: work-stealing drain (tasks/kcycle; the "
                 "ceiling wait parks every WG on one hot counter):\n";
    {
        harness::SweepRunner sweep;
        for (Policy policy : queuePolicies) {
            harness::Experiment exp;
            exp.workload = "WSD";
            exp.policy = policy;
            exp.params = params;
            sweep.enqueue(exp);
        }
        bench::runSweep(sweep, "queue_throughput/wsd");

        harness::TextTable t({"Policy", "Tasks/kcycle", "Cycles",
                              "Accuracy"});
        std::size_t idx = 0;
        for (Policy policy : queuePolicies) {
            const RunResult &r = sweep.result(idx++);
            t.addRow({core::policyName(policy),
                      itemsPerKilocycle(r, items),
                      std::to_string(r.gpuCycles), accuracyCell(r)});
        }
        bench::printTable(t);
    }

    std::cout << "\nReading: polling policies pay for every empty/full "
                 "probe at the L2; the waiting-atomic policies park "
                 "producers and consumers until the exact sequence "
                 "value lands. AWG's accuracy column shows how often "
                 "the Bloom predictor's wakeups were useful despite "
                 "the queue counters' high unique-update rate.\n";
    return 0;
}
