/**
 * @file
 * Ablation: Monitor Log replacement policies under SyncMon pressure —
 * the fairness study §V.A explicitly leaves to future work.
 *
 * With an undersized condition cache, set conflicts force
 * virtualization. `SpillNew` leaves older conditions in fast
 * hardware and pushes newcomers to the CP-checked log; the log "may
 * contain younger waiting conditions than the SyncMon cache" (paper).
 * `EvictYoungest` demotes the set's youngest resident instead. We
 * report runtime, virtualization traffic, and two fairness proxies:
 * the spread between the first and last WG completion and the worst
 * per-WG waiting time.
 */

#include "bench_common.hh"

namespace {

ifp::harness::Experiment
makeExperiment(const std::string &workload,
               ifp::syncmon::SpillPolicy policy, unsigned sets,
               unsigned ways)
{
    ifp::harness::Experiment exp;
    exp.workload = workload;
    exp.policy = ifp::core::Policy::Awg;
    exp.params = ifp::harness::defaultEvalParams();
    exp.runCfg.policy.syncmon.sets = sets;
    exp.runCfg.policy.syncmon.ways = ways;
    exp.runCfg.policy.syncmon.spillPolicy = policy;
    return exp;
}

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Ablation - Monitor Log replacement policies "
                  "(SyncMon forced down to 8 hardware conditions)");

    const std::vector<std::string> workloads = {"FAM_G", "SLM_G",
                                                "LFTB_LG", "SLM_L"};
    const std::vector<std::pair<const char *, syncmon::SpillPolicy>>
        spillPolicies = {
            {"spill-new", syncmon::SpillPolicy::SpillNew},
            {"evict-youngest", syncmon::SpillPolicy::EvictYoungest}};

    harness::SweepRunner sweep;
    for (const std::string &w : workloads) {
        for (const auto &[name, policy] : spillPolicies)
            sweep.enqueue(makeExperiment(w, policy, 2, 4));
    }
    bench::runSweep(sweep, "ablation_spill_policy");

    harness::TextTable t({"Benchmark", "Policy", "Cycles", "Spills",
                          "MaxLog", "CompletionSpread",
                          "MaxWgWait"});
    std::size_t idx = 0;
    for (const std::string &w : workloads) {
        for (const auto &[name, policy] : spillPolicies) {
            const core::RunResult &r = sweep.result(idx++);
            t.addRow({w, name, r.statusString(),
                      std::to_string(r.spills),
                      std::to_string(r.maxLogEntries),
                      std::to_string(r.wgCompletionSpreadCycles),
                      std::to_string(r.maxWgWaitCycles)});
        }
    }
    bench::printTable(t);
    std::cout << "\nReading: both policies preserve correctness; the "
                 "difference shows in which conditions enjoy fast\n"
                 "hardware notification vs periodic CP checks, "
                 "visible as completion spread and worst-case WG "
                 "wait.\n";
    return 0;
}
