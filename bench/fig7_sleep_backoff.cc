/**
 * @file
 * Figure 7: exponential backoff with s_sleep, swept over the maximum
 * backoff interval (Sleep-1k .. Sleep-256k), normalized to the
 * busy-waiting Baseline. The paper's shape: backoff helps up to a
 * point, then over-sleeping becomes counterproductive, and no single
 * interval is best for every primitive.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 7 - Exponential backoff with s_sleep "
                  "(normalized runtime, lower is better)");

    const std::vector<sim::Cycles> intervals = {
        1'000,  2'000,  4'000,   8'000,
        16'000, 32'000, 64'000, 128'000, 256'000};

    std::vector<std::string> headers = {"Benchmark", "Baseline"};
    for (sim::Cycles max_backoff : intervals)
        headers.push_back("Sleep-" + std::to_string(max_backoff / 1000)
                          + "k");
    harness::TextTable t(std::move(headers));

    const std::vector<std::string> benchmarks =
        bench::sleepBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        sweep.enqueue(bench::evalExperiment(w, core::Policy::Baseline));
        for (sim::Cycles max_backoff : intervals) {
            harness::Experiment exp =
                bench::evalExperiment(w, core::Policy::Sleep);
            exp.runCfg.policy.sleepMaxBackoffCycles = max_backoff;
            sweep.enqueue(std::move(exp));
        }
    }
    bench::runSweep(sweep, "fig7");

    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        const core::RunResult &base = sweep.result(idx++);
        std::vector<std::string> row = {w, "1.00"};
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            const core::RunResult &r = sweep.result(idx++);
            if (!r.completed) {
                row.push_back(r.statusString());
            } else {
                row.push_back(harness::formatDouble(
                    static_cast<double>(r.gpuCycles) /
                        static_cast<double>(base.gpuCycles),
                    2));
            }
        }
        t.addRow(std::move(row));
    }
    bench::printTable(t);
    std::cout << "\nShape check: values dip below 1.0 for contended "
                 "benchmarks and rise again for very long maximum "
                 "backoff (sleeping past the hand-off).\n";
    return 0;
}
