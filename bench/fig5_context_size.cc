/**
 * @file
 * Figure 5: work-group context size per benchmark (the cost a context
 * switch must pay). The paper reports 2-10 KB across the suite.
 */

#include "bench_common.hh"
#include "core/gpu_system.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 5 - Work-group context size (KB)");

    core::RunConfig cfg;
    core::GpuSystem system(cfg);
    workloads::WorkloadParams params = harness::defaultEvalParams();

    harness::TextTable t({"Benchmark", "VGPRs/WI", "SGPRs/WF",
                          "LDS (B)", "Context (KB)"});
    double min_kb = 1e9, max_kb = 0;
    for (const auto &w : workloads::makeFullSuite()) {
        isa::Kernel k = w->build(system, params);
        double kb = static_cast<double>(k.contextBytes()) / 1024.0;
        min_kb = std::min(min_kb, kb);
        max_kb = std::max(max_kb, kb);
        t.addRow({w->abbrev(), std::to_string(k.vgprsPerWi),
                  std::to_string(k.sgprsPerWf),
                  std::to_string(k.ldsBytes),
                  harness::formatDouble(kb, 2)});
    }
    bench::printTable(t);
    std::cout << "\nRange: " << harness::formatDouble(min_kb, 2)
              << " - " << harness::formatDouble(max_kb, 2)
              << " KB (paper: ~2 - 10 KB)\n";
    return 0;
}
