/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot primitives:
 * event queue throughput, L2 atomic processing, Bloom filter and
 * condition cache operations, and end-to-end simulated-cycles-per-
 * host-second for a representative workload. These guard the
 * simulator's own performance (host time), not the modeled GPU.
 */

#include <benchmark/benchmark.h>

#include "cp/command_processor.hh"
#include "harness/runner.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"
#include "syncmon/bloom_filter.hh"
#include "syncmon/condition_cache.hh"

namespace {

using namespace ifp;

void
BM_EventQueueScheduleExecute(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(i + 1, [&sink] { ++sink; });
        eq.simulate();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleExecute)->Arg(1024)->Arg(16384);

void
BM_BackingStoreAtomics(benchmark::State &state)
{
    mem::BackingStore store;
    mem::Addr addr = 0x1000;
    for (auto _ : state) {
        auto r = store.atomic(addr, mem::AtomicOpcode::Add, 1, 0, 8);
        benchmark::DoNotOptimize(r.newValue);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackingStoreAtomics);

void
BM_L2AtomicRoundTrip(benchmark::State &state)
{
    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram("dram", eq, mem::DramConfig{});
    mem::L2Cache l2("l2", eq, mem::L2Config{}, dram, store, pool);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Add;
        // Spread across lines to measure pipelined throughput.
        req->addr = 0x10000 + (ops % 64) * 64;
        req->operand = 1;
        l2.access(req);
        eq.simulate();
        ++ops;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2AtomicRoundTrip);

void
BM_BloomFilterObserve(benchmark::State &state)
{
    syncmon::CountingBloomFilter filter(24, 6);
    std::int64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter.observe(v++ % 16));
        if (v % 1024 == 0)
            filter.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomFilterObserve);

void
BM_ConditionCacheInsertFindRemove(benchmark::State &state)
{
    syncmon::ConditionCache cc(256, 4, 64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        mem::Addr addr = 0x1000 + (i % 512) * 64;
        auto *e = cc.insert(addr, static_cast<int>(i), false, 0);
        if (e) {
            benchmark::DoNotOptimize(
                cc.find(addr, static_cast<int>(i), false));
            cc.remove(e);
        }
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionCacheInsertFindRemove);

void
BM_MonitorLogAppendPop(benchmark::State &state)
{
    mem::BackingStore store;
    cp::MonitorLog log(0x1000, 1024, store);
    for (auto _ : state) {
        log.append({0x2000, 1, 2});
        benchmark::DoNotOptimize(log.pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorLogAppendPop);

void
BM_EndToEndSimulatedCyclesPerSecond(benchmark::State &state)
{
    std::uint64_t simulated = 0;
    for (auto _ : state) {
        harness::Experiment exp;
        exp.workload = "SPM_G";
        exp.policy = core::Policy::Awg;
        exp.params = harness::defaultEvalParams();
        exp.params.iters = 2;
        core::RunResult r = harness::runExperiment(exp);
        simulated += r.gpuCycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSimulatedCyclesPerSecond)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
