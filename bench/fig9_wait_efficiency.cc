/**
 * @file
 * Figure 9: wait efficiency — the number of dynamic atomic
 * instructions executed, normalized to the MinResume oracle (which
 * never resumes a WG unnecessarily). Log-scale in the paper:
 * MonRS-All (sporadic resume) wastes up to two orders of magnitude;
 * MonR-All / MonNR-All sit far closer to the oracle, with the
 * decentralized primitives essentially at 1x.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 9 - Wait efficiency "
                  "(dynamic atomics normalized to MinResume, "
                  "log-scale in the paper)");

    harness::TextTable t({"Benchmark", "MinResume", "MonRS-All",
                          "MonR-All", "MonNR-All"});

    const std::vector<core::Policy> policies = {
        core::Policy::MonRSAll, core::Policy::MonRAll,
        core::Policy::MonNRAll};
    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        sweep.enqueue(
            bench::evalExperiment(w, core::Policy::MinResume));
        for (core::Policy policy : policies)
            sweep.enqueue(bench::evalExperiment(w, policy));
    }
    bench::runSweep(sweep, "fig9");

    double worst_sporadic = 0.0;
    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        const core::RunResult &oracle = sweep.result(idx++);
        std::vector<std::string> row = {w, "1.00"};
        for (core::Policy policy : policies) {
            const core::RunResult &r = sweep.result(idx++);
            if (!r.completed || oracle.atomicInstructions == 0) {
                row.push_back("-");
                continue;
            }
            double norm =
                static_cast<double>(r.atomicInstructions) /
                static_cast<double>(oracle.atomicInstructions);
            if (policy == core::Policy::MonRSAll)
                worst_sporadic = std::max(worst_sporadic, norm);
            row.push_back(harness::formatDouble(norm, 2));
        }
        t.addRow(std::move(row));
    }
    bench::printTable(t);
    std::cout << "\nWorst MonRS-All blow-up: "
              << harness::formatDouble(worst_sporadic, 1)
              << "x the oracle (paper: up to ~100x+). Decentralized "
                 "primitives stay near 1x for every policy.\n";
    return 0;
}
