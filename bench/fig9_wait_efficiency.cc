/**
 * @file
 * Figure 9: wait efficiency — the number of dynamic atomic
 * instructions executed, normalized to the MinResume oracle (which
 * never resumes a WG unnecessarily). Log-scale in the paper:
 * MonRS-All (sporadic resume) wastes up to two orders of magnitude;
 * MonR-All / MonNR-All sit far closer to the oracle, with the
 * decentralized primitives essentially at 1x.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 9 - Wait efficiency "
                  "(dynamic atomics normalized to MinResume, "
                  "log-scale in the paper)");

    harness::TextTable t({"Benchmark", "MinResume", "MonRS-All",
                          "MonR-All", "MonNR-All"});
    double worst_sporadic = 0.0;
    for (const std::string &w : bench::figureBenchmarks()) {
        core::RunResult oracle =
            bench::evalRun(w, core::Policy::MinResume);
        auto cell = [&](core::Policy policy) {
            core::RunResult r = bench::evalRun(w, policy);
            if (!r.completed || oracle.atomicInstructions == 0)
                return std::string("-");
            double norm =
                static_cast<double>(r.atomicInstructions) /
                static_cast<double>(oracle.atomicInstructions);
            if (policy == core::Policy::MonRSAll)
                worst_sporadic = std::max(worst_sporadic, norm);
            return harness::formatDouble(norm, 2);
        };
        t.addRow({w, "1.00", cell(core::Policy::MonRSAll),
                  cell(core::Policy::MonRAll),
                  cell(core::Policy::MonNRAll)});
    }
    bench::printTable(t);
    std::cout << "\nWorst MonRS-All blow-up: "
              << harness::formatDouble(worst_sporadic, 1)
              << "x the oracle (paper: up to ~100x+). Decentralized "
                 "primitives stay near 1x for every policy.\n";
    return 0;
}
