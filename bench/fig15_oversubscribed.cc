/**
 * @file
 * Figure 15: the oversubscribed scenario — one CU's resident WGs are
 * pre-empted mid-run and the kernel must finish on 7 CUs. Speedups
 * are normalized to Timeout (the simplest policy that survives).
 * Baseline and Sleep DEADLOCK on every benchmark: current GPUs have
 * no WG-granularity swap-in, so the pre-empted WGs are stranded.
 * Paper: AWG ~2.5x over Timeout (geomean), with some tree barriers
 * being AWG's weakest cases due to stall-time prediction.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 15 - Speedup vs Timeout, oversubscribed "
                  "(one CU lost mid-run; higher is better)");

    const std::vector<core::Policy> policies = {
        core::Policy::Baseline, core::Policy::Sleep,
        core::Policy::MonNRAll, core::Policy::MonNROne,
        core::Policy::Awg};

    harness::TextTable t({"Benchmark", "Baseline", "Sleep", "Timeout",
                          "MonNR-All", "MonNR-One", "AWG"});

    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        sweep.enqueue(
            bench::evalExperiment(w, core::Policy::Timeout, true));
        for (core::Policy policy : policies)
            sweep.enqueue(bench::evalExperiment(w, policy, true));
    }
    bench::runSweep(sweep, "fig15");

    std::vector<std::vector<double>> speedups(policies.size());
    unsigned deadlocks = 0;
    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        const core::RunResult &timeout = sweep.result(idx++);
        std::vector<std::string> cells(policies.size());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const core::RunResult &r = sweep.result(idx++);
            cells[p] = bench::ratioCell(
                r, static_cast<double>(timeout.gpuCycles));
            if (r.deadlocked)
                ++deadlocks;
            if (r.completed && r.gpuCycles > 0) {
                speedups[p].push_back(
                    static_cast<double>(timeout.gpuCycles) /
                    static_cast<double>(r.gpuCycles));
            }
        }
        t.addRow({w, cells[0], cells[1], "1.00", cells[2], cells[3],
                  cells[4]});
    }

    std::vector<std::string> geo_row = {"GeoMean", "-", "-", "1.00"};
    for (std::size_t p = 2; p < policies.size(); ++p)
        geo_row.push_back(
            harness::formatDouble(harness::geomean(speedups[p]), 2));
    t.addRow(std::move(geo_row));

    bench::printTable(t);
    std::cout << "\nBaseline/Sleep deadlocks observed: " << deadlocks
              << " of " << 2 * bench::figureBenchmarks().size()
              << " (paper: all). AWG geomean over Timeout is the "
                 "headline oversubscribed result (~2.5x in the "
                 "paper).\n";
    return 0;
}
