/**
 * @file
 * Microbenchmarks of the schedule-exploration engine: full litmus
 * simulations per second under the stock schedule, a seeded random
 * walk, and the bounded exhaustive DFS. Exploration throughput is
 * the budget everything in `ifpexplore` spends — a litmus matrix is
 * hundreds of restart-based runs, so schedules/sec decides how much
 * schedule space a fixed wall-clock budget can cover. Also measures
 * the oracle plumbing itself (a preferred-choice oracle vs the null
 * fast path on identical runs).
 */

#include <benchmark/benchmark.h>

#include "explore/explore.hh"
#include "workloads/litmus.hh"

namespace {

using namespace ifp;

/** The stock schedule of one completing litmus cell (null oracle). */
void
BM_StockSchedule(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("prod-cons");
    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto r = explore::runLitmusSchedule(
            *litmus, core::Policy::Awg, nullptr);
        benchmark::DoNotOptimize(r.verdict);
        ++runs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_StockSchedule);

/** Same cell through the oracle path taking every preferred pick. */
void
BM_PreferredOracleSchedule(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("prod-cons");
    std::uint64_t runs = 0;
    for (auto _ : state) {
        explore::PreferredOracle oracle;
        auto r = explore::runLitmusSchedule(
            *litmus, core::Policy::Awg, &oracle);
        benchmark::DoNotOptimize(r.verdict);
        ++runs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_PreferredOracleSchedule);

/** A deadlocking cell: verdict costs whole detection windows. */
void
BM_DeadlockSchedule(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("mutual-pair");
    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto r = explore::runLitmusSchedule(
            *litmus, core::Policy::Baseline, nullptr);
        benchmark::DoNotOptimize(r.verdict);
        ++runs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_DeadlockSchedule);

/** Seeded random walk, schedules/sec (items = schedules). */
void
BM_RandomWalk(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("prod-cons");
    const unsigned schedules =
        static_cast<unsigned>(state.range(0));
    std::uint64_t total = 0;
    for (auto _ : state) {
        auto walk = explore::randomWalk(*litmus, core::Policy::Awg,
                                        /*seed=*/1, schedules);
        total += walk.schedules.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_RandomWalk)->Arg(8)->Arg(32);

/** Bounded exhaustive DFS over one cell (items = schedules run). */
void
BM_ExhaustiveDfs(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("occ-barrier");
    explore::ExhaustiveConfig cfg;
    cfg.maxSchedules = 40;
    cfg.maxPrefixDepth = 8;
    std::uint64_t total = 0;
    for (auto _ : state) {
        auto r = explore::exhaustive(*litmus, core::Policy::Awg, cfg);
        total += r.schedulesRun;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ExhaustiveDfs);

/**
 * POR on/off over the 6-WG pair grid, the cell the reduction was
 * built for: range(0) selects the sleep-set/persistent-set layer.
 * Items = schedules run, so the POR datapoint reports *fewer* items
 * per iteration — the wall-clock ratio between the two rows is the
 * price of exhausting the cell with vs without reduction.
 */
void
BM_ExhaustivePairGrid(benchmark::State &state)
{
    auto litmus = workloads::makeLitmus("pair-grid-6");
    explore::ExhaustiveConfig cfg;
    cfg.maxSchedules = 200;
    cfg.maxPrefixDepth = 12;
    cfg.por = state.range(0) != 0;
    cfg.run.maxCycles = 2'000'000;
    std::uint64_t total = 0;
    for (auto _ : state) {
        auto r = explore::exhaustive(
            *litmus, core::Policy::Baseline, cfg);
        total += r.schedulesRun;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ExhaustivePairGrid)
    ->Arg(0)->Arg(1)
    ->ArgName("por");

} // namespace

BENCHMARK_MAIN();
