/**
 * @file
 * Microbenchmarks of the memory-request path: request lifecycle cost
 * and the CU-visible L1/L2/DRAM round trips. These guard the host
 * cost of the simulator's hottest object — the MemRequest — and of
 * the devices it flows through (requests/s, not simulated cycles).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"

namespace {

using namespace ifp;

/** The CU-facing memory stack: L1 -> banked L2 -> DRAM. */
struct MemPath : mem::MemResponder
{
    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram{"dram", eq, mem::DramConfig{}};
    mem::L2Cache l2{"l2", eq, mem::L2Config{}, dram, store, pool};
    mem::L1Cache l1{"cu0.l1", eq, mem::L1Config{}, l2, pool};

    std::uint64_t completed = 0;

    void
    onMemResponse(mem::MemRequest &, std::uint64_t) override
    {
        ++completed;
    }

    mem::MemRequestPtr
    makeRequest(mem::MemOp op, mem::Addr addr)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = op;
        req->addr = addr;
        req->setResponder(this);
        return req;
    }
};

constexpr int batchSize = 64;

/** Pure request lifecycle: allocate, arm the callback, respond. */
void
BM_RequestLifecycle(benchmark::State &state)
{
    MemPath path;
    for (auto _ : state) {
        auto req = path.makeRequest(mem::MemOp::Read, 0x1000);
        req->respond();
        benchmark::DoNotOptimize(path.completed);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestLifecycle);

/** Loads hitting a warm L1 line: the cheapest full round trip. */
void
BM_L1HitLoads(benchmark::State &state)
{
    MemPath path;
    // Warm the line so the timed loop sees only hits.
    path.l1.access(path.makeRequest(mem::MemOp::Read, 0x4000));
    path.eq.simulate();

    for (auto _ : state) {
        for (int i = 0; i < batchSize; ++i)
            path.l1.access(path.makeRequest(mem::MemOp::Read, 0x4000));
        path.eq.simulate();
    }
    state.SetItemsProcessed(state.iterations() * batchSize);
    benchmark::DoNotOptimize(path.completed);
}
BENCHMARK(BM_L1HitLoads);

/** Streaming loads that miss everywhere: L1 fill + L2 fill + DRAM. */
void
BM_MissFillStream(benchmark::State &state)
{
    MemPath path;
    mem::Addr addr = 0x10'0000;
    for (auto _ : state) {
        for (int i = 0; i < batchSize; ++i) {
            path.l1.access(path.makeRequest(mem::MemOp::Read, addr));
            addr += 64;  // new line every request: always a miss
        }
        path.eq.simulate();
    }
    state.SetItemsProcessed(state.iterations() * batchSize);
    benchmark::DoNotOptimize(path.completed);
}
BENCHMARK(BM_MissFillStream);

/** Atomics bypassing the L1, performed at the L2 bank ALUs. */
void
BM_AtomicRoundTrip(benchmark::State &state)
{
    MemPath path;
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (int i = 0; i < batchSize; ++i) {
            // Spread across lines to measure pipelined throughput.
            auto req = path.makeRequest(mem::MemOp::Atomic,
                                        0x2000 + (n++ % 64) * 64);
            req->aop = mem::AtomicOpcode::Add;
            req->operand = 1;
            path.l1.access(req);
        }
        path.eq.simulate();
    }
    state.SetItemsProcessed(state.iterations() * batchSize);
    benchmark::DoNotOptimize(path.completed);
}
BENCHMARK(BM_AtomicRoundTrip);

} // anonymous namespace

BENCHMARK_MAIN();
