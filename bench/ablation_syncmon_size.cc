/**
 * @file
 * Ablation: SyncMon sizing vs virtualization overhead.
 *
 * The paper sizes the SyncMon at 1024 conditions + 512 waiters
 * (§V.C) and argues the Monitor Log virtualization makes overflow a
 * correctness non-event. This sweep quantifies the *performance* cost
 * of undersizing: as hardware shrinks, more waits ride the
 * CP-checked log (periodic polling instead of immediate
 * notification) and runtime degrades gracefully — never deadlocks.
 */

#include "bench_common.hh"

namespace {

struct Hw
{
    const char *label;
    unsigned sets;
    unsigned ways;
    unsigned waitlist;
};

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Ablation - SyncMon sizing vs virtualization "
                  "overhead (AWG, runtime normalized to full-size)");

    const Hw configs[] = {
        {"full(1024c/512w)", 256, 4, 512},
        {"64c/64w", 16, 4, 64},
        {"16c/16w", 4, 4, 16},
        {"4c/8w", 1, 4, 8},
        {"1c/2w", 1, 1, 2},
    };

    std::vector<std::string> headers = {"Benchmark"};
    for (const Hw &hw : configs)
        headers.emplace_back(hw.label);
    harness::TextTable t(std::move(headers));

    const std::vector<std::string> workloads = {"SPM_G", "FAM_G",
                                                "SLM_G", "TB_LG"};
    harness::SweepRunner sweep;
    for (const std::string &w : workloads) {
        for (const Hw &hw : configs) {
            harness::Experiment exp;
            exp.workload = w;
            exp.policy = core::Policy::Awg;
            exp.params = harness::defaultEvalParams();
            exp.runCfg.policy.syncmon.sets = hw.sets;
            exp.runCfg.policy.syncmon.ways = hw.ways;
            exp.runCfg.policy.syncmon.waitingListCapacity =
                hw.waitlist;
            sweep.enqueue(std::move(exp));
        }
    }
    bench::runSweep(sweep, "ablation_syncmon_size");

    std::size_t idx = 0;
    for (const std::string &w : workloads) {
        double full_cycles = 0;
        std::vector<std::string> row = {w};
        for (std::size_t i = 0; i < std::size(configs); ++i) {
            const core::RunResult &r = sweep.result(idx++);
            if (!r.completed) {
                row.push_back(r.statusString());
                continue;
            }
            if (full_cycles == 0)
                full_cycles = static_cast<double>(r.gpuCycles);
            row.push_back(harness::formatDouble(
                static_cast<double>(r.gpuCycles) / full_cycles, 2));
        }
        t.addRow(std::move(row));
    }
    bench::printTable(t);
    std::cout << "\nReading: the paper-sized SyncMon never spills at "
                 "this geometry; shrinking it degrades runtime "
                 "smoothly (CP-checked conditions resume at "
                 "housekeeping granularity) and correctness is never "
                 "at risk — the virtualization claim of Section V.\n";
    return 0;
}
