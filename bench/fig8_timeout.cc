/**
 * @file
 * Figure 8: the Timeout architecture swept over its fixed interval
 * (10k / 20k / 50k / 100k cycles), normalized to the Baseline.
 * Paper's shape: no single best interval, and some intervals are
 * substantially *worse* than busy-waiting for latency-sensitive
 * primitives — the motivation for real hardware monitoring.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 8 - Timeout interval sweep "
                  "(runtime normalized to Baseline, lower is better)");

    const std::vector<sim::Cycles> intervals = {10'000, 20'000,
                                                50'000, 100'000};

    std::vector<std::string> headers = {"Benchmark", "Baseline"};
    for (sim::Cycles interval : intervals)
        headers.push_back("Timeout-" +
                          std::to_string(interval / 1000) + "k");
    harness::TextTable t(std::move(headers));

    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        sweep.enqueue(bench::evalExperiment(w, core::Policy::Baseline));
        for (sim::Cycles interval : intervals) {
            harness::Experiment exp =
                bench::evalExperiment(w, core::Policy::Timeout);
            exp.runCfg.policy.timeoutIntervalCycles = interval;
            sweep.enqueue(std::move(exp));
        }
    }
    bench::runSweep(sweep, "fig8");

    double worst = 0.0;
    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        const core::RunResult &base = sweep.result(idx++);
        std::vector<std::string> row = {w, "1.00"};
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            const core::RunResult &r = sweep.result(idx++);
            if (!r.completed) {
                row.push_back(r.statusString());
            } else {
                double norm = static_cast<double>(r.gpuCycles) /
                              static_cast<double>(base.gpuCycles);
                worst = std::max(worst, norm);
                row.push_back(harness::formatDouble(norm, 2));
            }
        }
        t.addRow(std::move(row));
    }
    bench::printTable(t);
    std::cout << "\nWorst normalized runtime observed: "
              << harness::formatDouble(worst, 2)
              << "x (paper shows up to ~2.5-3x worse than Baseline)\n";
    return 0;
}
