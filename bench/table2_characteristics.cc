/**
 * @file
 * Table 2: benchmark characteristics. Prints the symbolic
 * characterization (in terms of G, L, n) of every benchmark plus the
 * concrete values for the standard evaluation geometry, and verifies
 * the dynamic behaviour (measured waiter counts) against it.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Table 2 - Inter-WG synchronization benchmarks",
                  "[G = total WGs, L = WGs per CU, n = WIs per WG, "
                  "d = shared structure size]");

    harness::TextTable t({"Benchmark", "Abbrev", "Granularity",
                          "#sync vars", "#conds/var", "#waiters/cond",
                          "#updates till met", "Description"});
    for (const auto &w : workloads::makeFullSuite()) {
        workloads::Table2Row row = w->characteristics();
        t.addRow({w->name(), row.abbrev, row.granularity,
                  row.numSyncVars, row.condsPerVar,
                  row.waitersPerCond, row.updatesUntilMet,
                  row.description});
    }
    bench::printTable(t);

    // Concrete instantiation used by every bench binary.
    workloads::WorkloadParams params = harness::defaultEvalParams();
    std::cout << "\nEvaluation geometry: G=" << params.numWgs
              << ", L=" << params.wgsPerGroup
              << ", n=" << params.wiPerWg
              << ", iterations=" << params.iters << "\n";

    // Dynamic cross-check: measured peak waiter population per
    // benchmark under MonNR-All (every waiter registered).
    std::cout << "\nMeasured peak SyncMon occupancy (MonNR-All):\n";
    harness::TextTable m({"Benchmark", "max conditions",
                          "max waiting WGs", "monitored lines"});
    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks)
        sweep.enqueue(bench::evalExperiment(w, core::Policy::MonNRAll));
    bench::runSweep(sweep, "table2");
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        const core::RunResult &r = sweep.result(i);
        m.addRow({benchmarks[i], std::to_string(r.maxConditions),
                  std::to_string(r.maxWaiters),
                  std::to_string(r.maxMonitoredLines)});
    }
    bench::printTable(m);
    return 0;
}
