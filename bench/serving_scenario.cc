/**
 * @file
 * Multi-tenant serving scenario: the same seeded Poisson stream of 20
 * kernel launches (latency / throughput / batch tenant mix) served
 * under the three admission policies of the CP scheduler:
 *
 *  - serial:   one resident kernel at a time (classic GPU queue),
 *  - share:    up to 4 residents with a 2-CU share floor,
 *  - priority: up to 4 residents, pure priority cascade.
 *
 * Reported per policy: p50/p99 turnaround, SLO misses of the
 * deadline-carrying tenant, preemption/swap activity and the Jain
 * fairness index over per-tenant delivered WGs. Everything is
 * deterministic from the seed — reruns and IFP_BENCH_JOBS settings
 * produce byte-identical stdout.
 */

#include <chrono>

#include "bench_common.hh"
#include "harness/serving.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Multi-tenant kernel-stream serving",
                  "One Poisson stream, three admission policies.");

    const std::vector<std::string> admissions = {"serial", "share",
                                                 "priority"};
    std::vector<harness::ServingReport> reports;
    std::vector<harness::BenchReport::ExternalPoint> points;

    for (const std::string &admission : admissions) {
        harness::ServingConfig cfg;
        cfg.policy = core::Policy::Awg;
        cfg.admission = admission;
        cfg.numLaunches = 20;
        cfg.seed = 1;
        cfg.meanInterarrivalUs = 5.0;
        cfg.params = harness::defaultServingParams();

        auto t0 = std::chrono::steady_clock::now();
        harness::ServingReport report =
            harness::runServingScenario(cfg);
        auto t1 = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(t1 - t0).count();
        std::fprintf(stderr, "serving/%s: %.2fs\n", admission.c_str(),
                     seconds);

        harness::BenchReport::ExternalPoint point;
        point.workload = "mix20";
        point.policy = admission;
        point.completed = report.allCompleted;
        point.seconds = seconds;
        point.gpuCycles = report.makespanCycles;
        point.hostEvents = report.run.hostEvents;
        point.memRequests = report.run.memRequests;
        points.push_back(std::move(point));
        reports.push_back(std::move(report));
    }

    std::cout << "\n";
    harness::writeServingTable(std::cout, reports);

    std::cout << "\nPer-policy serving reports (ifp-serving-v1):\n";
    for (const harness::ServingReport &report : reports) {
        harness::writeServingJson(std::cout, report);
        std::cout << "\n";
    }

    std::cout << "Reading: 'serial' is the no-sharing baseline — low-"
                 "priority kernels head-of-line-block the latency "
                 "tenant. 'share' carves the machine into CU shares "
                 "(fairness up, tail down); 'priority' gives the "
                 "latency tenant the whole machine on arrival, at the "
                 "cost of preempting resident batch work — the WG "
                 "drain/context-save machinery the paper builds for "
                 "oversubscription, reused for multi-tenant serving.\n";

    harness::BenchReport::instance().addExternalSweep(
        "serving_scenario/admission", points);
    return 0;
}
