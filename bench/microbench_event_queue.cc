/**
 * @file
 * Microbenchmarks of the EventQueue hot path: one-shot lambda
 * scheduling (the queue's free-list recycling vs the legacy
 * allocate-per-schedule pattern), raw schedule/step on external
 * events, and deschedule/reschedule churn. These quantify the
 * events/sec the simulator core sustains — the figure every sweep's
 * runtime is built on.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using namespace ifp;

/**
 * One-shot lambdas through the queue-owned free-list path: after the
 * first wave, every schedule(Tick, fn) re-arms a recycled event
 * instead of allocating.
 */
void
BM_OneShotFreeList(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const sim::Tick start = eq.curTick();
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(start + i + 1, [&sink] { ++sink; });
        eq.simulate();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["pool_events"] =
        static_cast<double>(eq.ownedPoolSize());
}
BENCHMARK(BM_OneShotFreeList)->Arg(1024)->Arg(16384);

/**
 * The legacy pattern this PR removed: a fresh heap-allocated
 * LambdaEvent (and its std::function) per one-shot, swept after the
 * wave. Kept here as the before/after baseline for EXPERIMENTS.md.
 */
void
BM_OneShotHeapAlloc(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    std::vector<std::unique_ptr<sim::LambdaEvent>> owned;
    for (auto _ : state) {
        const sim::Tick start = eq.curTick();
        for (int i = 0; i < state.range(0); ++i) {
            owned.push_back(std::make_unique<sim::LambdaEvent>(
                [&sink] { ++sink; }));
            eq.schedule(owned.back().get(), start + i + 1);
        }
        eq.simulate();
        owned.clear();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OneShotHeapAlloc)->Arg(1024)->Arg(16384);

class NullEvent : public sim::Event
{
  public:
    void process() override {}
};

/** Raw schedule + step of externally-owned events (no allocation). */
void
BM_ScheduleStep(benchmark::State &state)
{
    sim::EventQueue eq;
    NullEvent ev;
    for (auto _ : state) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleStep);

/** Schedule/deschedule churn: stale heap entries must stay cheap. */
void
BM_ScheduleDeschedule(benchmark::State &state)
{
    sim::EventQueue eq;
    NullEvent ev;
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.deschedule(&ev);
        // Drain accumulated stale entries so the heap stays bounded.
        if ((++n & 1023u) == 0)
            eq.simulate();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleDeschedule);

/** Reschedule: the wait/resume pattern the policies lean on. */
void
BM_Reschedule(benchmark::State &state)
{
    sim::EventQueue eq;
    NullEvent ev;
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.reschedule(&ev, eq.curTick() + 1 + (n & 7u));
        if ((++n & 1023u) == 0)
            eq.simulate();
    }
    // Fire the final occurrence so 'ev' is unscheduled at destruction.
    eq.simulate();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Reschedule);

} // anonymous namespace

BENCHMARK_MAIN();
