/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries. Each
 * binary regenerates the rows/series of one table or figure of
 * "Independent Forward Progress of Work-groups" (ISCA 2020).
 */

#ifndef IFP_BENCH_BENCH_COMMON_HH
#define IFP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

namespace ifp::bench {

/** The 12 benchmarks of Figures 14/15, in axis order. */
inline std::vector<std::string>
figureBenchmarks()
{
    return workloads::heteroSyncAbbrevs();
}

/** The six benchmarks the paper modified for Figure 7 (Sleep). */
inline std::vector<std::string>
sleepBenchmarks()
{
    return {"SPM_G", "FAM_G", "SPM_L", "FAM_L", "TB_LG", "TBEX_LG"};
}

/** Banner naming the experiment being reproduced. */
inline void
banner(const std::string &what, const std::string &notes = "")
{
    std::cout << "==========================================================\n";
    std::cout << "Reproduction: " << what << "\n";
    std::cout << "Paper: Independent Forward Progress of Work-groups"
              << " (ISCA 2020)\n";
    if (!notes.empty())
        std::cout << notes << "\n";
    std::cout << "==========================================================\n";
}

/** Format a speedup/ratio for a table cell. */
inline std::string
ratioCell(const core::RunResult &result, double reference_cycles)
{
    if (result.deadlocked)
        return "DEADLOCK";
    if (!result.completed)
        return "timeout";
    if (result.gpuCycles == 0)
        return "-";
    return harness::formatDouble(
        reference_cycles / static_cast<double>(result.gpuCycles), 2);
}

/**
 * Print @p table (CSV handling — the IFP_BENCH_CSV environment
 * variable — lives in harness::TextTable::emit, shared by every
 * output path).
 */
inline void
printTable(const harness::TextTable &table)
{
    table.emit(std::cout);
}

/** The standard-evaluation-geometry experiment for one (w, policy). */
inline harness::Experiment
evalExperiment(const std::string &workload, core::Policy policy,
               bool oversubscribed = false)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = harness::defaultEvalParams();
    exp.oversubscribed = oversubscribed;
    if (oversubscribed) {
        // Our kernels are shorter than the paper's testbed runs; the
        // pre-emption point scales accordingly (mid-run, as in §VI).
        exp.params.iters = 16;
        exp.runCfg.cuLossMicroseconds = 10;
    }
    return exp;
}

/** Run one experiment in the standard evaluation geometry. */
inline core::RunResult
evalRun(const std::string &workload, core::Policy policy,
        bool oversubscribed = false)
{
    return harness::runExperiment(
        evalExperiment(workload, policy, oversubscribed));
}

/**
 * Execute every experiment queued on @p sweep (worker count from
 * IFP_BENCH_JOBS) and print the per-bench wall-clock/speedup line to
 * stderr. Results come back in submission order, so tables built
 * from them are byte-identical to a serial run. When
 * IFP_BENCH_JSON_OUT is set, the sweep's perf record also lands in
 * the machine-readable BENCH_*.json report (harness/bench_report.hh).
 */
inline const std::vector<core::RunResult> &
runSweep(harness::SweepRunner &sweep, const std::string &label)
{
    const std::vector<core::RunResult> &results = sweep.run();
    sweep.reportPerf(label);
    harness::BenchReport::instance().addSweep(label, sweep);
    return results;
}

} // namespace ifp::bench

#endif // IFP_BENCH_BENCH_COMMON_HH
