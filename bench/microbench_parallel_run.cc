/**
 * @file
 * Microbenchmarks of the parallel-in-run PDES core (--shards N).
 *
 * Two layers:
 *
 *  - BM_DomainCore: the DomainScheduler superstep machinery in
 *    isolation — a root domain exchanging latency-stamped messages
 *    with a set of stage-1 domains, at 1..N executor threads. This
 *    quantifies the per-superstep synchronization cost the sharded
 *    core pays over a bare EventQueue (BM_SingleQueue is that
 *    reference point).
 *
 *  - BM_FullRun: a whole simulation (SPM_G under AWG, the evaluation
 *    geometry scaled down) through harness::runExperiment at
 *    shards = 1 / 2 / 4. The items/sec counter is simulated host
 *    events, so serial-vs-sharded throughput is directly comparable;
 *    the speedup EXPERIMENTS.md quotes is BM_FullRun/1 time divided
 *    by BM_FullRun/4 time on a multi-core host.
 *
 * The full-run benches set IFP_SHARDS_NO_CLAMP so executor threads
 * are real even when the harness would clamp them (single-core CI
 * boxes): on such hosts the sharded numbers honestly show the
 * synchronization overhead instead of silently degenerating to the
 * serial core.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "harness/runner.hh"
#include "sim/event_domain.hh"

namespace {

using namespace ifp;

constexpr sim::Tick kLookahead = 25'000;

/**
 * Root/bank message ping-pong through the conservative scheduler:
 * every bank event sends an upward message one lookahead later, whose
 * handler sends the next downward message. Workload per superstep is
 * tiny on purpose — this stresses the barrier, not the payload.
 */
void
BM_DomainCore(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    const int banks = 4;
    const int rounds = 64;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        sim::DomainScheduler sched(kLookahead, threads);
        sim::EventDomain &root = sched.addDomain("root", 0);
        std::vector<sim::EventDomain *> mems;
        for (int b = 0; b < banks; ++b)
            mems.push_back(&sched.addDomain("mem", 1));

        // One round trip: root tick t -> bank (same tick) -> root at
        // t + lookahead -> next trip.
        struct Pump
        {
            sim::EventDomain *root;
            sim::EventDomain *mem;
            int left;
            void
            down()
            {
                root->send(*mem, root->queue().curTick(), [this] {
                    mem->send(*root,
                              mem->queue().curTick() + kLookahead,
                              [this] {
                                  if (--left > 0)
                                      down();
                              },
                              "mb.up");
                }, "mb.down");
            }
        };
        std::vector<Pump> pumps;
        pumps.reserve(mems.size());
        for (sim::EventDomain *m : mems)
            pumps.push_back(Pump{&root, m, rounds});
        root.queue().schedule(1, [&] {
            for (Pump &p : pumps)
                p.down();
        }, "mb.start");

        sched.start();
        sched.runUntil(sim::maxTick - 1);
        executed += sched.numExecuted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
    state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DomainCore)->Arg(1)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond);

/** The bare-EventQueue reference point for BM_DomainCore's payload. */
void
BM_SingleQueue(benchmark::State &state)
{
    const int banks = 4;
    const int rounds = 64;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        struct Pump
        {
            sim::EventQueue *eq;
            int left;
            void
            down()
            {
                eq->schedule(eq->curTick() + 1, [this] {
                    eq->schedule(eq->curTick() + kLookahead, [this] {
                        if (--left > 0)
                            down();
                    }, "mb.up");
                }, "mb.down");
            }
        };
        std::vector<Pump> pumps(banks, Pump{&eq, rounds});
        for (Pump &p : pumps)
            p.down();
        eq.simulate();
        executed += eq.numExecuted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_SingleQueue)->Unit(benchmark::kMillisecond);

/**
 * Whole-simulation throughput at a given shard count. items/sec is
 * host events executed, identical work across shard settings (the
 * parity suite proves the runs are byte-identical), so the ratio of
 * the /1 and /4 timings is the in-run speedup.
 */
void
BM_FullRun(benchmark::State &state)
{
    ::setenv("IFP_SHARDS_NO_CLAMP", "1", 1);
    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = core::Policy::Awg;
    exp.params = harness::defaultEvalParams();
    exp.params.iters = 4;
    exp.runCfg.shards = static_cast<unsigned>(state.range(0));

    std::uint64_t events = 0;
    for (auto _ : state) {
        core::RunResult r = harness::runExperiment(exp);
        benchmark::DoNotOptimize(r.gpuCycles);
        events += r.hostEvents;
    }
    ::unsetenv("IFP_SHARDS_NO_CLAMP");
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["shards"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullRun)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
