/**
 * @file
 * Figure 14 (headline): speedup over the busy-waiting Baseline in the
 * non-oversubscribed scenario, for Sleep, Timeout, MonNR-All,
 * MonNR-One and AWG, plus the geometric mean. Log-scale in the
 * paper; AWG's geomean there is ~12x. The qualitative shape to
 * verify: AWG tracks the better of MonNR-One (mutexes) and
 * MonNR-All (barriers), and Sleep/Timeout are sometimes *slower*
 * than the Baseline.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 14 - Speedup vs Baseline, "
                  "non-oversubscribed (higher is better)");

    const std::vector<core::Policy> policies = {
        core::Policy::Sleep,    core::Policy::Timeout,
        core::Policy::MonNRAll, core::Policy::MonNROne,
        core::Policy::Awg};

    harness::TextTable t({"Benchmark", "Baseline", "Sleep", "Timeout",
                          "MonNR-All", "MonNR-One", "AWG"});

    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        sweep.enqueue(bench::evalExperiment(w, core::Policy::Baseline));
        for (core::Policy policy : policies)
            sweep.enqueue(bench::evalExperiment(w, policy));
    }
    bench::runSweep(sweep, "fig14");

    std::vector<std::vector<double>> speedups(policies.size());
    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        const core::RunResult &base = sweep.result(idx++);
        std::vector<std::string> row = {w, "1.00"};
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const core::RunResult &r = sweep.result(idx++);
            row.push_back(bench::ratioCell(
                r, static_cast<double>(base.gpuCycles)));
            if (r.completed && r.gpuCycles > 0) {
                speedups[p].push_back(
                    static_cast<double>(base.gpuCycles) /
                    static_cast<double>(r.gpuCycles));
            }
        }
        t.addRow(std::move(row));
    }

    std::vector<std::string> geo_row = {"GeoMean", "1.00"};
    for (std::size_t p = 0; p < policies.size(); ++p)
        geo_row.push_back(
            harness::formatDouble(harness::geomean(speedups[p]), 2));
    t.addRow(std::move(geo_row));

    bench::printTable(t);
    std::cout << "\nShape checks: AWG >= max(MonNR-All, MonNR-One) "
                 "per benchmark (within predictor warm-up); largest "
                 "wins on centralized mutexes; Timeout/Sleep < 1.0 "
                 "for some benchmarks.\n";
    return 0;
}
