/**
 * @file
 * Ablation: how the Baseline-vs-AWG gap depends on the substrate's
 * same-line atomic turnaround (the coherence/RMW round trip contended
 * atomics pay at the shared L2) and on the number of contending WGs.
 *
 * This is the knob that separates our substrate from the paper's
 * gem5/Ruby testbed: the paper's Figure 7 implies same-line atomic
 * costs in the hundreds of cycles (backoff alone buys an order of
 * magnitude), and its ~12x Figure 14 geomean follows from that. The
 * sweep shows AWG's advantage growing with contention cost while the
 * decentralized benchmarks stay flat — the paper's qualitative
 * structure at every point of the design space.
 */

#include "bench_common.hh"

namespace {

ifp::harness::Experiment
makeExperiment(const std::string &workload, ifp::core::Policy policy,
               ifp::sim::Cycles gap, unsigned num_wgs, unsigned group)
{
    ifp::harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = ifp::harness::defaultEvalParams();
    exp.params.numWgs = num_wgs;
    exp.params.wgsPerGroup = group;
    exp.runCfg.gpu.l2.sameLineAtomicGapCycles = gap;
    return exp;
}

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Ablation - contention sensitivity of the "
                  "Baseline/AWG gap");

    const std::vector<sim::Cycles> gaps = {25, 50, 150, 300};
    const std::vector<std::string> workloads = {"SPM_G", "FAM_G",
                                                "SLM_G", "TB_LG"};

    std::cout << "\nAWG speedup over Baseline vs same-line atomic "
                 "turnaround (G=64, L=8):\n";
    {
        harness::SweepRunner sweep;
        for (const std::string &w : workloads) {
            for (sim::Cycles g : gaps) {
                sweep.enqueue(makeExperiment(
                    w, core::Policy::Baseline, g, 64, 8));
                sweep.enqueue(
                    makeExperiment(w, core::Policy::Awg, g, 64, 8));
            }
        }
        bench::runSweep(sweep, "ablation_contention/gap");

        std::vector<std::string> headers = {"Benchmark"};
        for (sim::Cycles g : gaps)
            headers.push_back(std::to_string(g) + "cy");
        harness::TextTable t(std::move(headers));
        std::size_t idx = 0;
        for (const std::string &w : workloads) {
            std::vector<std::string> row = {w};
            for (std::size_t i = 0; i < gaps.size(); ++i) {
                const auto &base = sweep.result(idx++);
                const auto &awg = sweep.result(idx++);
                row.push_back(bench::ratioCell(
                    awg, static_cast<double>(base.gpuCycles)));
            }
            t.addRow(std::move(row));
        }
        bench::printTable(t);
    }

    std::cout << "\nAWG speedup over Baseline vs contending WGs "
                 "(turnaround fixed at 150cy):\n";
    {
        const std::vector<std::pair<unsigned, unsigned>> geometries =
            {{16, 2}, {32, 4}, {64, 8}, {128, 16}};
        harness::SweepRunner sweep;
        for (const std::string &w : workloads) {
            for (auto [g, l] : geometries) {
                sweep.enqueue(makeExperiment(
                    w, core::Policy::Baseline, 150, g, l));
                sweep.enqueue(
                    makeExperiment(w, core::Policy::Awg, 150, g, l));
            }
        }
        bench::runSweep(sweep, "ablation_contention/wgs");

        std::vector<std::string> headers = {"Benchmark"};
        for (auto [g, l] : geometries)
            headers.push_back("G=" + std::to_string(g));
        harness::TextTable t(std::move(headers));
        std::size_t idx = 0;
        for (const std::string &w : workloads) {
            std::vector<std::string> row = {w};
            for (std::size_t i = 0; i < geometries.size(); ++i) {
                const auto &base = sweep.result(idx++);
                const auto &awg = sweep.result(idx++);
                row.push_back(bench::ratioCell(
                    awg, static_cast<double>(base.gpuCycles)));
            }
            t.addRow(std::move(row));
        }
        bench::printTable(t);
    }

    std::cout << "\nReading: centralized primitives (SPM/FAM) scale "
                 "with both knobs — at Ruby-like turnarounds and "
                 "occupancies the paper's order-of-magnitude gaps "
                 "appear; decentralized SLM and the barrier stay "
                 "flat, bounding the suite geomean.\n";
    return 0;
}
