/**
 * @file
 * Table 1: the baseline GPU model. Prints the simulated machine's
 * configuration and asserts it matches the paper's parameters.
 */

#include "bench_common.hh"
#include "core/gpu_system.hh"
#include "sim/logging.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Table 1 - Baseline GPU model");

    core::RunConfig cfg;
    const gpu::GpuConfig &g = cfg.gpu;

    harness::TextTable t({"Parameter", "Value"});
    t.addRow({"Compute Units", std::to_string(g.numCus)});
    t.addRow({"Clock",
              std::to_string(sim::ticksPerSecond / g.clockPeriod /
                             1'000'000'000ULL) +
                  " GHz"});
    t.addRow({"SIMD units / CU", std::to_string(g.simdsPerCu)});
    t.addRow({"SIMD width", std::to_string(g.simdWidth)});
    t.addRow({"Wavefronts / SIMD",
              std::to_string(g.wavefrontsPerSimd)});
    t.addRow({"LDS / CU",
              std::to_string(g.ldsBytesPerCu / 1024) + " KB"});
    t.addRow({"L1 / CU",
              std::to_string(g.l1.sizeBytes / 1024) + " KB, " +
                  std::to_string(g.l1.assoc) + "-way, " +
                  std::to_string(g.l1.hitLatency) + " cycles"});
    t.addRow({"L2 shared",
              std::to_string(g.l2.sizeBytes / 1024) + " KB, " +
                  std::to_string(g.l2.assoc) + "-way, " +
                  std::to_string(g.l2.hitLatency) + " cycles, " +
                  std::to_string(g.l2.banks) + " banks"});
    t.addRow({"L2 same-line atomic turnaround",
              std::to_string(g.l2.sameLineAtomicGapCycles) +
                  " cycles"});
    t.addRow({"DRAM",
              std::to_string(g.dram.channels) + " channels, " +
                  std::to_string(g.dram.accessLatency) +
                  "-cycle access @ 1 GHz"});
    t.addRow({"Cacheline", std::to_string(g.l2.lineBytes) + " B"});
    bench::printTable(t);

    // Guard the Table 1 parameters against accidental drift.
    ifp_assert(g.numCus == 8, "Table 1: 8 CUs");
    ifp_assert(g.simdsPerCu == 2, "Table 1: 2 SIMDs per CU");
    ifp_assert(g.simdWidth == 64, "Table 1: SIMD width 64");
    ifp_assert(g.wavefrontsPerSimd == 20,
               "Table 1: 20 wavefronts per SIMD");
    ifp_assert(g.l1.sizeBytes == 32 * 1024 && g.l1.hitLatency == 30,
               "Table 1: 32KB / 30-cycle L1");
    ifp_assert(g.l2.sizeBytes == 512 * 1024 && g.l2.assoc == 16 &&
               g.l2.hitLatency == 50,
               "Table 1: 512KB 16-way 50-cycle L2");
    ifp_assert(g.dram.channels == 4, "Table 1: 4 DRAM channels");
    std::cout << "\nAll Table 1 parameters verified.\n";
    return 0;
}
