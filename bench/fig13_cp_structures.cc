/**
 * @file
 * Figure 13: size of the data structures the Command Processor uses
 * for WG scheduling. As in the paper, the Monitor Log column assumes
 * *no* SyncMon cache (worst-case virtualization: every condition
 * spills), which we measure by running AWG with the hardware
 * condition cache disabled down to one entry. The context-store
 * footprint is reported alongside.
 */

#include "bench_common.hh"
#include "core/gpu_system.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 13 - CP scheduling data structures (KB), "
                  "Monitor Log measured with no SyncMon cache");

    harness::TextTable t({"Benchmark", "WaitingConds(KB)",
                          "MonitoredAddrs(KB)", "WaitingWGs(KB)",
                          "MonitorTable(KB)", "ContextStore(MB)"});
    // Provisioned context store: the CP allocates room for every
    // WG's context up front (paper: 0.74 - 3.11 MB).
    core::RunConfig layout_cfg;
    core::GpuSystem layout(layout_cfg);
    workloads::WorkloadParams params = harness::defaultEvalParams();

    const std::vector<std::string> benchmarks =
        bench::figureBenchmarks();
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        // Full hardware: per-structure peak occupancy.
        sweep.enqueue(bench::evalExperiment(w, core::Policy::Awg));
        // No SyncMon cache: everything virtualizes through the log.
        harness::Experiment exp =
            bench::evalExperiment(w, core::Policy::Awg);
        exp.runCfg.policy.syncmon.sets = 1;
        exp.runCfg.policy.syncmon.ways = 1;
        exp.runCfg.policy.syncmon.waitingListCapacity = 1;
        sweep.enqueue(std::move(exp));
    }
    bench::runSweep(sweep, "fig13");

    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        isa::Kernel kernel =
            workloads::makeWorkload(w)->build(layout, params);
        double provisioned_mb =
            static_cast<double>(kernel.contextBytes()) *
            kernel.numWgs / (1024.0 * 1024.0);
        const core::RunResult &full = sweep.result(idx++);
        const core::RunResult &spilled = sweep.result(idx++);

        auto kb = [](double bytes) {
            return harness::formatDouble(bytes / 1024.0, 2);
        };
        // Entry sizes: a waiting condition is (addr, value) = 16 B, a
        // monitored address 8 B, a waiting WG id 4 B, and Monitor
        // Log / monitor table records 24 B (cp/monitor_log.hh).
        t.addRow({w, kb(16.0 * full.maxConditions),
                  kb(8.0 * full.maxMonitoredLines),
                  kb(4.0 * full.maxWaiters),
                  kb(24.0 * spilled.maxLogEntries),
                  harness::formatDouble(provisioned_mb, 2)});
    }
    bench::printTable(t);
    std::cout << "\n(Figure 13 of the paper reports up to ~20 KB for "
                 "these structures with hundreds of WGs; scale here "
                 "follows our G=64 geometry.)\n";
    return 0;
}
