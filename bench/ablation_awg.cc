/**
 * @file
 * Ablation of AWG's two prediction mechanisms (Section IV.B / V.A):
 *
 *  1. the *resume predictor* (Bloom-filter unique-update counting
 *     choosing resume-all vs resume-one) — ablated by comparing AWG
 *     against the fixed MonNR-All / MonNR-One policies,
 *  2. the *stall-period predictor* (stall a predicted window before
 *     paying for a context switch) — ablated with a config switch
 *     that makes oversubscribed AWG context switch immediately.
 */

#include "bench_common.hh"

namespace {

ifp::harness::Experiment
awgExperiment(const std::string &workload, bool oversubscribed,
              bool stall_prediction)
{
    ifp::harness::Experiment exp = ifp::bench::evalExperiment(
        workload, ifp::core::Policy::Awg, oversubscribed);
    exp.runCfg.policy.syncmon.stallPredictionEnabled =
        stall_prediction;
    return exp;
}

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Ablation - AWG's prediction mechanisms");

    const std::vector<std::string> workloads = {
        "SPM_G", "FAM_G", "SLM_G", "TB_LG", "LFTB_LG", "TBEX_LG"};

    std::cout << "\nResume predictor (non-oversubscribed cycles; AWG "
                 "should track the better fixed policy):\n";
    {
        harness::SweepRunner sweep;
        for (const std::string &w : workloads) {
            sweep.enqueue(
                bench::evalExperiment(w, core::Policy::MonNRAll));
            sweep.enqueue(
                bench::evalExperiment(w, core::Policy::MonNROne));
            sweep.enqueue(bench::evalExperiment(w, core::Policy::Awg));
        }
        bench::runSweep(sweep, "ablation_awg/resume");

        harness::TextTable t({"Benchmark", "MonNR-All", "MonNR-One",
                              "AWG", "AWG picks"});
        std::size_t idx = 0;
        for (const std::string &w : workloads) {
            const auto &all = sweep.result(idx++);
            const auto &one = sweep.result(idx++);
            const auto &awg = sweep.result(idx++);
            const char *pick =
                awg.gpuCycles <=
                        std::min(all.gpuCycles, one.gpuCycles) +
                            std::min(all.gpuCycles, one.gpuCycles) / 4
                    ? "best"
                    : "neither";
            t.addRow({w, all.statusString(), one.statusString(),
                      awg.statusString(), pick});
        }
        bench::printTable(t);
    }

    std::cout << "\nStall-period predictor (oversubscribed cycles and "
                 "context switches):\n";
    {
        harness::SweepRunner sweep;
        for (const std::string &w : workloads) {
            sweep.enqueue(awgExperiment(w, true, true));
            sweep.enqueue(awgExperiment(w, true, false));
        }
        bench::runSweep(sweep, "ablation_awg/stall");

        harness::TextTable t({"Benchmark", "AWG cycles",
                              "AWG saves", "NoStallPred cycles",
                              "NoStallPred saves"});
        std::size_t idx = 0;
        for (const std::string &w : workloads) {
            const auto &with = sweep.result(idx++);
            const auto &without = sweep.result(idx++);
            t.addRow({w, with.statusString(),
                      std::to_string(with.contextSaves),
                      without.statusString(),
                      std::to_string(without.contextSaves)});
        }
        bench::printTable(t);
    }

    std::cout << "\nReading: without stall prediction every failed "
                 "wait under oversubscription pays a full context "
                 "switch; prediction trades a short stall for far "
                 "fewer switches (the paper's §IV.B rationale). The "
                 "paper also notes the flip side: mispredicted stalls "
                 "on latency-sensitive barriers add critical-path "
                 "delay.\n";
    return 0;
}
