/**
 * @file
 * Ablation of AWG's two prediction mechanisms (Section IV.B / V.A):
 *
 *  1. the *resume predictor* (Bloom-filter unique-update counting
 *     choosing resume-all vs resume-one) — ablated by comparing AWG
 *     against the fixed MonNR-All / MonNR-One policies,
 *  2. the *stall-period predictor* (stall a predicted window before
 *     paying for a context switch) — ablated with a config switch
 *     that makes oversubscribed AWG context switch immediately.
 */

#include "bench_common.hh"

namespace {

ifp::core::RunResult
runAwg(const std::string &workload, bool oversubscribed,
       bool stall_prediction)
{
    ifp::harness::Experiment exp;
    exp.workload = workload;
    exp.policy = ifp::core::Policy::Awg;
    exp.oversubscribed = oversubscribed;
    exp.params = ifp::harness::defaultEvalParams();
    if (oversubscribed) {
        exp.params.iters = 16;
        exp.runCfg.cuLossMicroseconds = 10;
    }
    exp.runCfg.policy.syncmon.stallPredictionEnabled =
        stall_prediction;
    return ifp::harness::runExperiment(exp);
}

} // anonymous namespace

int
main()
{
    using namespace ifp;
    bench::banner("Ablation - AWG's prediction mechanisms");

    const std::vector<std::string> workloads = {
        "SPM_G", "FAM_G", "SLM_G", "TB_LG", "LFTB_LG", "TBEX_LG"};

    std::cout << "\nResume predictor (non-oversubscribed cycles; AWG "
                 "should track the better fixed policy):\n";
    {
        harness::TextTable t({"Benchmark", "MonNR-All", "MonNR-One",
                              "AWG", "AWG picks"});
        for (const std::string &w : workloads) {
            auto all = bench::evalRun(w, core::Policy::MonNRAll);
            auto one = bench::evalRun(w, core::Policy::MonNROne);
            auto awg = bench::evalRun(w, core::Policy::Awg);
            const char *pick =
                awg.gpuCycles <=
                        std::min(all.gpuCycles, one.gpuCycles) +
                            std::min(all.gpuCycles, one.gpuCycles) / 4
                    ? "best"
                    : "neither";
            t.addRow({w, all.statusString(), one.statusString(),
                      awg.statusString(), pick});
        }
        bench::printTable(t);
    }

    std::cout << "\nStall-period predictor (oversubscribed cycles and "
                 "context switches):\n";
    {
        harness::TextTable t({"Benchmark", "AWG cycles",
                              "AWG saves", "NoStallPred cycles",
                              "NoStallPred saves"});
        for (const std::string &w : workloads) {
            auto with = runAwg(w, true, true);
            auto without = runAwg(w, true, false);
            t.addRow({w, with.statusString(),
                      std::to_string(with.contextSaves),
                      without.statusString(),
                      std::to_string(without.contextSaves)});
        }
        bench::printTable(t);
    }

    std::cout << "\nReading: without stall prediction every failed "
                 "wait under oversubscription pays a full context "
                 "switch; prediction trades a short stall for far "
                 "fewer switches (the paper's §IV.B rationale). The "
                 "paper also notes the flip side: mispredicted stalls "
                 "on latency-sensitive barriers add critical-path "
                 "delay.\n";
    return 0;
}
