/**
 * @file
 * Figure 11: WG execution-time break-down (running vs waiting on
 * synchronization), normalized to Timeout, for the non-oversubscribed
 * case. Paper's shape: MonNR-One keeps mutex waiting low but inflates
 * barrier waiting enormously; MonNR-All is the reverse.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ifp;
    bench::banner("Figure 11 - WG execution break-down "
                  "(normalized to Timeout; log-scale in the paper)");

    const std::vector<std::string> benchmarks = {
        "SPM_G", "FAM_G", "SLM_G", "SPM_L",   "FAM_L",
        "SLM_L", "TB_LG", "LFTB_LG", "TBEX_LG", "LFTBEX_LG"};

    harness::TextTable t({"Benchmark", "Policy", "Running(norm)",
                          "Waiting(norm)", "Waiting share"});

    const std::vector<core::Policy> policies = {
        core::Policy::Timeout, core::Policy::MonNRAll,
        core::Policy::MonNROne};
    harness::SweepRunner sweep;
    for (const std::string &w : benchmarks) {
        for (core::Policy policy : policies)
            sweep.enqueue(bench::evalExperiment(w, policy));
    }
    bench::runSweep(sweep, "fig11");

    std::size_t idx = 0;
    for (const std::string &w : benchmarks) {
        // The Timeout run is both the normalization reference and the
        // first table row.
        const core::RunResult &timeout = sweep.result(idx);
        double ref_run = timeout.totalWgRunCycles();
        double ref_wait = timeout.totalWgWaitCycles;
        for (core::Policy policy : policies) {
            const core::RunResult &r = sweep.result(idx++);
            if (!r.completed) {
                t.addRow({w, core::policyName(policy),
                          r.statusString(), r.statusString(), "-"});
                continue;
            }
            double run_n = ref_run > 0
                               ? r.totalWgRunCycles() / ref_run
                               : 0.0;
            double wait_n = ref_wait > 0
                                ? r.totalWgWaitCycles / ref_wait
                                : 0.0;
            double share =
                r.totalWgExecCycles > 0
                    ? r.totalWgWaitCycles / r.totalWgExecCycles
                    : 0.0;
            t.addRow({w, core::policyName(policy),
                      harness::formatDouble(run_n, 2),
                      harness::formatDouble(wait_n, 3),
                      harness::formatDouble(100.0 * share, 1) + "%"});
        }
    }
    bench::printTable(t);
    std::cout << "\nShape check: MonNR-One waiting stays low for "
                 "mutexes but dominates for centralized tree "
                 "barriers; MonNR-All is the other way around.\n";

    // Observability cross-check: the stall-reason accounting
    // partitions each WG's lifetime, so the per-reason shares sum to
    // 100% per run and the waiting column above should agree with the
    // "waiting" bucket.
    bench::banner("Stall-reason break-down "
                  "(share of total WG lifetime cycles)");
    std::vector<std::string> headers2 = {"Benchmark", "Policy"};
    for (std::size_t i = 0; i < sim::numStallReasons; ++i)
        headers2.push_back(sim::stallReasonName(
            static_cast<sim::StallReason>(i)));
    harness::TextTable t2(std::move(headers2));

    idx = 0;
    for (const std::string &w : benchmarks) {
        for (core::Policy policy : policies) {
            const core::RunResult &r = sweep.result(idx++);
            std::vector<std::string> row = {w,
                                            core::policyName(policy)};
            if (!r.completed || r.wgLifetimeCycles <= 0) {
                for (std::size_t i = 0; i < sim::numStallReasons; ++i)
                    row.push_back("-");
            } else {
                for (std::size_t i = 0; i < sim::numStallReasons; ++i)
                    row.push_back(harness::formatDouble(
                        100.0 * r.wgCycleBreakdown[i] /
                            r.wgLifetimeCycles, 1) + "%");
            }
            t2.addRow(std::move(row));
        }
    }
    bench::printTable(t2);
    return 0;
}
